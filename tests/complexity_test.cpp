// Tests for the complexity analytics: the paper's closed forms (Table 2),
// the Table 3 values, the headline 56% / 19% ratios, and agreement between
// formulas and the operation counts of generated tests.
#include <gtest/gtest.h>

#include "core/complexity.h"
#include "march/library.h"

namespace twm {
namespace {

TEST(Complexity, ProposedClosedForm) {
  // (S + 5 log2 B, Q + 2 log2 B).
  const auto c = formula_proposed(10, 5, 32);
  EXPECT_EQ(c.tcm, 10u + 25u);
  EXPECT_EQ(c.tcp, 5u + 10u);
  EXPECT_EQ(c.total(), 50u);
}

TEST(Complexity, Scheme1ClosedForm) {
  const auto c = formula_scheme1(10, 5, 32);
  EXPECT_EQ(c.tcm, 60u);
  EXPECT_EQ(c.tcp, 30u);
  EXPECT_EQ(c.total(), 90u);
}

TEST(Complexity, TomtClosedForm) {
  const auto c = formula_tomt(32);
  EXPECT_EQ(c.tcm, 7u + 256u);
  EXPECT_EQ(c.tcp, 0u);
}

TEST(Complexity, PaperHeadlineRatios) {
  // Sec. 1/5/6: for March C- on 32-bit words the proposed scheme costs
  // "about 56%" of Scheme 1 and "about 19%" of Scheme 2.
  const auto& info = march_info("March C-");
  const double proposed = formula_proposed(info.ops, info.reads, 32).total();
  const double s1 = formula_scheme1(info.ops, info.reads, 32).total();
  const double s2 = formula_tomt(32).total();
  EXPECT_NEAR(proposed / s1, 0.556, 0.005);
  EXPECT_NEAR(proposed / s2, 0.190, 0.005);
}

TEST(Complexity, Table3ProposedValues) {
  const auto& c = march_info("March C-");
  const auto& u = march_info("March U");
  struct Row {
    unsigned b;
    std::size_t c_tcm, c_tcp, u_tcm, u_tcp;
  };
  // Closed-form Table 3 coefficients (see EXPERIMENTS.md).
  const Row rows[] = {
      {16, 30, 13, 33, 14},
      {32, 35, 15, 38, 16},
      {64, 40, 17, 43, 18},
      {128, 45, 19, 48, 20},
  };
  for (const auto& r : rows) {
    EXPECT_EQ(formula_proposed(c.ops, c.reads, r.b).tcm, r.c_tcm) << r.b;
    EXPECT_EQ(formula_proposed(c.ops, c.reads, r.b).tcp, r.c_tcp) << r.b;
    EXPECT_EQ(formula_proposed(u.ops, u.reads, r.b).tcm, r.u_tcm) << r.b;
    EXPECT_EQ(formula_proposed(u.ops, u.reads, r.b).tcp, r.u_tcp) << r.b;
  }
}

TEST(Complexity, MeasuredMatchesFormulaForMarchCMinus) {
  // March C-'s generated TWMarch hits the closed form exactly (the dropped
  // init element cancels the appended ATMarch closing read).
  const MarchTest bit = march_by_name("March C-");
  const auto& info = march_info("March C-");
  for (unsigned w : {4u, 8u, 16u, 32u, 64u, 128u}) {
    EXPECT_EQ(measured_proposed(bit, w).tcm, formula_proposed(info.ops, info.reads, w).tcm)
        << "width " << w;
  }
}

TEST(Complexity, MeasuredMarchUIsPaper29N) {
  // The paper's own prose quotes 29N for March U at B = 8 (one more than
  // its closed form: the appended read-back survives).
  EXPECT_EQ(measured_proposed(march_by_name("March U"), 8).tcm, 29u);
  EXPECT_EQ(formula_proposed(13, 6, 8).tcm, 28u);
}

TEST(Complexity, MeasuredPredictionReadsExceedClosedForm) {
  // Step-4 removal keeps Q_T + 3 log2 B + 1 reads; the paper's closed form
  // says Q + 2 log2 B.  Both are reported; measured >= formula always.
  for (const auto& name : {"March C-", "March U", "March B"}) {
    const auto& info = march_info(name);
    for (unsigned w : {8u, 32u}) {
      const auto measured = measured_proposed(march_by_name(name), w);
      const auto formula = formula_proposed(info.ops, info.reads, w);
      EXPECT_GE(measured.tcp, formula.tcp) << name << " width " << w;
    }
  }
}

TEST(Complexity, MeasuredScheme1MatchesConstruction) {
  // Pattern passes cost S+1 ops each (prepended read on the init element),
  // the solid pass costs S-1, plus the 2-op restore when needed.
  const MarchTest bit = march_by_name("March C-");
  for (unsigned w : {4u, 8u, 16u, 32u}) {
    const std::size_t m = measured_scheme1(bit, w).tcm;
    const std::size_t log2b = [&] {
      unsigned x = w, n = 0;
      while (x > 1) x >>= 1, ++n;
      return n;
    }();
    EXPECT_EQ(m, 9u + 11u * log2b + 2u) << "width " << w;
  }
}

TEST(Complexity, ProposedBeatsBaselinesAcrossTable3) {
  for (const auto* name : {"March C-", "March U"}) {
    const auto& info = march_info(name);
    for (unsigned b : {16u, 32u, 64u, 128u}) {
      const auto p = formula_proposed(info.ops, info.reads, b);
      const auto s1 = formula_scheme1(info.ops, info.reads, b);
      const auto s2 = formula_tomt(b);
      EXPECT_LT(p.total(), s1.total()) << name << " B=" << b;
      EXPECT_LT(p.total(), s2.total()) << name << " B=" << b;
    }
  }
}

TEST(Complexity, ProposedOnlyWeaklyDependsOnTest) {
  // Sec. 6: the proposed scheme's complexity is only slightly related to
  // the underlying bit-oriented test, unlike Scheme 1.  Compare the spread
  // between a short and a long march at B = 64.
  const auto& mats = march_info("MATS+");
  const auto& ss = march_info("March SS");
  const double spread_proposed =
      static_cast<double>(formula_proposed(ss.ops, ss.reads, 64).total()) /
      formula_proposed(mats.ops, mats.reads, 64).total();
  const double spread_s1 = static_cast<double>(formula_scheme1(ss.ops, ss.reads, 64).total()) /
                           formula_scheme1(mats.ops, mats.reads, 64).total();
  EXPECT_LT(spread_proposed, spread_s1);
}

TEST(Complexity, CoeffStr) { EXPECT_EQ(coeff_str(35), "35N"); }

}  // namespace
}  // namespace twm
