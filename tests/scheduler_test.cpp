// Tests for the survivor-repacked lane scheduler (analysis/campaign_exec.h
// run_campaign_engine_repack + analysis/campaign.cpp collapsing dispatch):
//
//   * the hard invariant — byte-identical VerdictMatrix between the dense
//     and repack schedulers, for every scheme, at 64 and (when the CPU
//     supports it) 256 lanes, with collapsing on and off,
//   * structural fault collapsing (analysis/fault_list.h collapse_faults):
//     bucket structure of each rule, expansion == uncollapsed run,
//   * per-lane retire + reinject on a live PackedMemory batch,
//   * the scheduler's forward-progress counters (settle-exit actually
//     skips march elements; collapsing actually simulates fewer faults).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "core/scheme_session.h"
#include "core/simd.h"
#include "march/library.h"
#include "march/word_expand.h"
#include "memsim/packed_memory.h"

namespace twm {
namespace {

constexpr std::size_t kWords = 4;
constexpr unsigned kWidth = 4;

std::vector<simd::Request> schedulable_widths() {
  std::vector<simd::Request> widths{simd::Request::W64};
  if (simd::supported(simd::Width::W256)) widths.push_back(simd::Request::W256);
  return widths;
}

// Every fault class, including RETs (undetected by a Del-free March C-, so
// they exercise the dropping path) and decoder faults.
std::vector<Fault> mixed_faults() {
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  for (auto& f : all_rets(kWords, kWidth, 1)) faults.push_back(f);
  for (auto& f : all_afs(kWords)) faults.push_back(f);
  for (auto& f : all_cfs(kWords, kWidth, FaultClass::CFst, CfScope::Both)) faults.push_back(f);
  for (auto& f : all_cfs(kWords, kWidth, FaultClass::CFin, CfScope::IntraWord))
    faults.push_back(f);
  // Duplicates exercise the always-on dedup rule.
  faults.push_back(faults.front());
  faults.push_back(faults[1]);
  return faults;
}

CoverageOptions options(CoverageBackend backend, simd::Request w, ScheduleMode schedule,
                        bool collapse, unsigned threads = 2) {
  return {backend, threads, w, schedule, collapse};
}

// --- the hard invariant: dense == repack, byte for byte -----------------

TEST(SchedulerDifferential, MatrixIdenticalAcrossSchemesWidthsAndModes) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = mixed_faults();
  // Zero-only seeds activate every collapsing rule; the mixed set
  // activates dropping between rounds.
  for (const std::vector<std::uint64_t>& seeds :
       {std::vector<std::uint64_t>{0}, std::vector<std::uint64_t>{0, 1, 2}}) {
    for (SchemeKind k : kAllSchemes) {
      for (simd::Request w : schedulable_widths()) {
        const CampaignRunner dense(
            kWords, kWidth, options(CoverageBackend::Packed, w, ScheduleMode::Dense, false));
        const VerdictMatrix want = dense.matrix(k, march, faults, seeds);
        for (bool collapse : {false, true}) {
          const CampaignRunner repack(
              kWords, kWidth,
              options(CoverageBackend::Packed, w, ScheduleMode::Repack, collapse));
          const VerdictMatrix got = repack.matrix(k, march, faults, seeds);
          EXPECT_EQ(want.bits, got.bits)
              << to_string(k) << " simd=" << static_cast<int>(w) << " collapse=" << collapse
              << " seeds=" << seeds.size();
        }
      }
    }
  }
}

TEST(SchedulerDifferential, ScalarRepackMatchesScalarDense) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = mixed_faults();
  const std::vector<std::uint64_t> seeds{0, 3};
  for (SchemeKind k : kAllSchemes) {
    const CampaignRunner dense(
        kWords, kWidth,
        options(CoverageBackend::Scalar, simd::Request::Auto, ScheduleMode::Dense, false));
    const CampaignRunner repack(
        kWords, kWidth,
        options(CoverageBackend::Scalar, simd::Request::Auto, ScheduleMode::Repack, true));
    EXPECT_EQ(dense.matrix(k, march, faults, seeds).bits,
              repack.matrix(k, march, faults, seeds).bits)
        << to_string(k);
  }
}

// per_fault exercises the dropping path (no matrix -> undecided faults
// leave the live set between rounds), evaluate the all+any bookkeeping.
TEST(SchedulerDifferential, PerFaultAndAggregatesMatchAcrossModes) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = mixed_faults();
  const std::vector<std::uint64_t> seeds{0, 1, 2};
  for (SchemeKind k : kAllSchemes) {
    for (simd::Request w : schedulable_widths()) {
      const CampaignRunner dense(
          kWords, kWidth, options(CoverageBackend::Packed, w, ScheduleMode::Dense, false));
      const CampaignRunner repack(
          kWords, kWidth, options(CoverageBackend::Packed, w, ScheduleMode::Repack, true));
      EXPECT_EQ(dense.per_fault(k, march, faults, seeds), repack.per_fault(k, march, faults, seeds))
          << to_string(k);
      const CoverageOutcome a = dense.evaluate(k, march, faults, seeds);
      const CoverageOutcome b = repack.evaluate(k, march, faults, seeds);
      EXPECT_EQ(a.detected_all, b.detected_all) << to_string(k);
      EXPECT_EQ(a.detected_any, b.detected_any) << to_string(k);
      EXPECT_EQ(a.total, b.total) << to_string(k);
    }
  }
}

// --- structural fault collapsing ----------------------------------------

TEST(FaultCollapse, ExpandedVerdictsMatchUncollapsedRun) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = mixed_faults();
  const std::vector<std::uint64_t> seeds{0};  // zero contents arm every rule
  for (SchemeKind k : kAllSchemes) {
    const CampaignRunner off(
        kWords, kWidth,
        options(CoverageBackend::Packed, simd::Request::W64, ScheduleMode::Repack, false));
    const CampaignRunner on(
        kWords, kWidth,
        options(CoverageBackend::Packed, simd::Request::W64, ScheduleMode::Repack, true));
    EXPECT_EQ(off.per_fault(k, march, faults, seeds), on.per_fault(k, march, faults, seeds))
        << to_string(k);
  }
}

TEST(FaultCollapse, DuplicatesAlwaysCollapse) {
  const SchemePlan plan =
      make_scheme_plan(SchemeKind::ProposedMisr, march_by_name("March C-"), kWidth);
  std::vector<Fault> faults{Fault::saf({1, 2}, true), Fault::saf({1, 2}, true),
                            Fault::tf({0, 0}, Transition::Down)};
  // Random contents: only the dedup rule may apply.
  const FaultCollapse fc = collapse_faults(faults, plan, {7});
  ASSERT_EQ(fc.representatives.size(), 2u);
  EXPECT_EQ(fc.bucket_of[0], fc.bucket_of[1]);
  EXPECT_NE(fc.bucket_of[0], fc.bucket_of[2]);
  EXPECT_EQ(fc.members[fc.bucket_of[0]].size(), 2u);
}

TEST(FaultCollapse, SafTfEquivalenceRequiresZeroContents) {
  const SchemePlan plan =
      make_scheme_plan(SchemeKind::ProposedMisr, march_by_name("March C-"), kWidth);
  std::vector<Fault> faults{Fault::saf({1, 2}, false), Fault::tf({1, 2}, Transition::Up),
                            Fault::saf({1, 2}, true), Fault::tf({1, 2}, Transition::Down)};
  // All-zero contents: a cell that starts at 0 and cannot rise IS stuck-0.
  const FaultCollapse zero = collapse_faults(faults, plan, {0});
  EXPECT_EQ(zero.representatives.size(), 3u);
  EXPECT_EQ(zero.bucket_of[0], zero.bucket_of[1]);
  EXPECT_NE(zero.bucket_of[2], zero.bucket_of[0]);  // SAF1 stays alone
  EXPECT_NE(zero.bucket_of[3], zero.bucket_of[0]);  // TF down stays alone
  // Any random seed disarms the rule.
  const FaultCollapse rnd = collapse_faults(faults, plan, {0, 5});
  EXPECT_EQ(rnd.representatives.size(), 4u);
}

// A hand-built plan with solid data everywhere: bit addresses collapse for
// cell and coupling faults (word-level structure only), decoder faults
// only deduplicate.
TEST(FaultCollapse, BitSymmetricPlanCollapsesBitAddresses) {
  SchemePlan plan;
  plan.scheme = SchemeKind::WordOrientedMarch;
  plan.width = kWidth;
  plan.direct_a = solid_march(march_by_name("March C-"));
  ASSERT_TRUE(plan_bit_symmetric(plan));

  std::vector<Fault> faults;
  for (unsigned b = 0; b < kWidth; ++b) faults.push_back(Fault::saf({2, b}, true));
  for (unsigned b = 0; b < kWidth; ++b) faults.push_back(Fault::tf({1, b}, Transition::Down));
  // Inter-word CFins with every bit placement of the same word pair.
  for (unsigned ab = 0; ab < kWidth; ++ab)
    for (unsigned vb = 0; vb < kWidth; ++vb)
      faults.push_back(Fault::cfin({0, ab}, Transition::Up, {3, vb}));
  faults.push_back(Fault::af_no_access(0));
  faults.push_back(Fault::af_no_access(1));

  const FaultCollapse fc = collapse_faults(faults, plan, {0});
  // One SAF1 bucket, one TF-down bucket, one CFin bucket, two AFs.
  EXPECT_EQ(fc.representatives.size(), 5u);
  EXPECT_EQ(fc.members[fc.bucket_of[0]].size(), kWidth);
  EXPECT_EQ(fc.members[fc.bucket_of[2 * kWidth]].size(),
            static_cast<std::size_t>(kWidth) * kWidth);

  // And the collapsed campaign still reproduces the uncollapsed verdicts
  // for a scheme whose generated plan IS bit-symmetric is covered above;
  // here prove the predicate rejects the background-bearing plans.
  const SchemePlan twm_plan =
      make_scheme_plan(SchemeKind::ProposedExact, march_by_name("March C-"), kWidth);
  EXPECT_FALSE(plan_bit_symmetric(twm_plan));
  const SchemePlan misr_plan =
      make_scheme_plan(SchemeKind::ProposedMisr, march_by_name("March C-"), kWidth);
  EXPECT_FALSE(plan_bit_symmetric(misr_plan));
}

// --- per-lane retire + reinject into a live batch -----------------------

TEST(RetireLanes, RetiredLaneBehavesFaultFreeOthersKeepTheirFault) {
  PackedMemory mem(kWords, kWidth);
  mem.inject(Fault::saf({1, 2}, true), block_lane<std::uint64_t>(1));
  mem.inject(Fault::saf({1, 2}, true), block_lane<std::uint64_t>(2));
  EXPECT_TRUE(mem.lane_bit(1, 1, 2));  // stuck value enforced at inject
  EXPECT_TRUE(mem.lane_bit(2, 1, 2));

  mem.retire_lanes(block_lane<std::uint64_t>(1));
  // A write of zeros now sticks in the retired lane, stays forced in the
  // live one, and leaves the golden lane untouched.
  const auto zeros = broadcast_word(BitVec::zeros(kWidth));
  mem.write(1, zeros.data());
  EXPECT_FALSE(mem.lane_bit(1, 1, 2)) << "retired lane must accept the write";
  EXPECT_TRUE(mem.lane_bit(2, 1, 2)) << "live lane must keep its stuck-at";
  EXPECT_FALSE(mem.lane_bit(0, 1, 2));
}

TEST(RetireLanes, RetireCoversEveryClassAndElapse) {
  PackedMemory mem(kWords, kWidth);
  mem.inject(Fault::tf({0, 1}, Transition::Up), block_lane<std::uint64_t>(1));
  mem.inject(Fault::cfst({0, 0}, true, {2, 3}, true), block_lane<std::uint64_t>(2));
  mem.inject(Fault::cfin({1, 0}, Transition::Up, {2, 0}), block_lane<std::uint64_t>(3));
  mem.inject(Fault::ret({3, 0}, true, 1), block_lane<std::uint64_t>(4));
  mem.inject(Fault::af_no_access(2), block_lane<std::uint64_t>(5));
  mem.retire_lanes(~0ull & ~1ull);  // retire every fault lane

  // After retiring, every port op behaves fault-free in every lane.
  const auto ones = broadcast_word(BitVec::ones(kWidth));
  for (std::size_t a = 0; a < kWords; ++a) mem.write(a, ones.data());
  mem.elapse(5);  // dead RET entries must not decay
  for (unsigned lane : {0u, 1u, 2u, 3u, 4u, 5u})
    for (std::size_t a = 0; a < kWords; ++a)
      EXPECT_EQ(mem.lane_word(lane, a), BitVec::ones(kWidth)) << "lane " << lane;

  // Reinjecting into a freed lane keeps working (the batch is still live).
  mem.inject(Fault::saf({0, 0}, false), block_lane<std::uint64_t>(1));
  EXPECT_FALSE(mem.lane_bit(1, 0, 0));
  const auto ones2 = broadcast_word(BitVec::ones(kWidth));
  mem.write(0, ones2.data());
  EXPECT_FALSE(mem.lane_bit(1, 0, 0)) << "reinjected stuck-at-0 must hold";
  EXPECT_TRUE(mem.lane_bit(0, 0, 0));

  // Re-injection revives the lane: a LATER retire of a different lane must
  // not sweep the reinjected fault into the previously retired set.
  mem.retire_lanes(block_lane<std::uint64_t>(6));
  mem.write(0, ones2.data());
  EXPECT_FALSE(mem.lane_bit(1, 0, 0)) << "reinjected fault must survive later retires";
}

// --- forward-progress counters ------------------------------------------

TEST(SchedulerStats, SettleExitSkipsElementsAndCollapseShrinksTheList) {
  const MarchTest march = march_by_name("March C-");
  // All-SAF workload: every fault is detected early in the session, so the
  // settle-exit must cut march elements, and SAF0 collapses with TF up.
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  const std::vector<std::uint64_t> seeds{0};

  CampaignStats repack_stats;
  const CampaignRunner repack(
      kWords, kWidth,
      options(CoverageBackend::Packed, simd::Request::W64, ScheduleMode::Repack, true, 1));
  std::vector<char> all, any;
  repack.run(SchemeKind::ProposedExact, march, faults, seeds, false, all, any, nullptr,
             nullptr, &repack_stats);
  EXPECT_LT(repack_stats.faults_simulated.load(), faults.size()) << "collapse must bite";
  EXPECT_LT(repack_stats.elements_executed.load(), repack_stats.elements_total.load())
      << "settle-exit must cut march elements";
  EXPECT_GT(repack_stats.units.load(), 0u);
  EXPECT_GT(repack_stats.mean_live_lanes(), 0.0);

  CampaignStats dense_stats;
  const CampaignRunner dense(
      kWords, kWidth,
      options(CoverageBackend::Packed, simd::Request::W64, ScheduleMode::Dense, false, 1));
  std::vector<char> dall, dany;
  dense.run(SchemeKind::ProposedExact, march, faults, seeds, false, dall, dany, nullptr,
            nullptr, &dense_stats);
  EXPECT_EQ(dense_stats.elements_executed.load(), dense_stats.elements_total.load())
      << "dense runs full-length sessions";
  EXPECT_EQ(dense_stats.faults_simulated.load(), faults.size());
  EXPECT_EQ(all, dall);
  EXPECT_EQ(any, dany);
}

// Streamed unit records of a collapsed campaign: one record per ORIGINAL
// fault, each carrying its bucket's expanded verdict.
class RecordingObserver : public UnitObserver {
 public:
  void on_unit_settled(std::size_t first, unsigned count, const char* all,
                       const char* any) override {
    for (unsigned i = 0; i < count; ++i) {
      records.push_back(first + i);
      alls.push_back(all[i]);
      anys.push_back(any[i]);
    }
  }
  std::vector<std::size_t> records;
  std::vector<char> alls, anys;
};

TEST(SchedulerObserver, CollapsedCampaignStreamsOneRecordPerOriginalFault) {
  const MarchTest march = march_by_name("March C-");
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  const std::vector<std::uint64_t> seeds{0};
  const CampaignRunner repack(
      kWords, kWidth,
      options(CoverageBackend::Packed, simd::Request::W64, ScheduleMode::Repack, true, 1));
  RecordingObserver obs;
  std::vector<char> all, any;
  repack.run(SchemeKind::ProposedExact, march, faults, seeds, true, all, any, nullptr, &obs);
  ASSERT_EQ(obs.records.size(), faults.size());
  std::vector<char> seen(faults.size(), 0);
  for (std::size_t i = 0; i < obs.records.size(); ++i) {
    ASSERT_LT(obs.records[i], faults.size());
    EXPECT_FALSE(seen[obs.records[i]]) << "duplicate record for fault " << obs.records[i];
    seen[obs.records[i]] = 1;
    EXPECT_EQ(obs.alls[i], all[obs.records[i]]);
    EXPECT_EQ(obs.anys[i], any[obs.records[i]]);
  }
}

}  // namespace
}  // namespace twm
