// Tests for the campaign layer (analysis/campaign.h) and the lane-generic
// scheme execution core it drives (core/scheme_session.h): plan
// amortization, the worker pool's exception propagation, the packed
// golden-lane self-check, the per-fault x per-seed verdict matrix, and the
// diagnosis campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "analysis/campaign.h"
#include "analysis/diagnosis.h"
#include "analysis/fault_list.h"
#include "march/library.h"

namespace twm {
namespace {

constexpr std::size_t kWords = 4;
constexpr unsigned kWidth = 4;

std::vector<Fault> some_faults() {
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  return faults;
}

// --- SchemePlan amortization -------------------------------------------

// The campaign contract the scalar backend used to violate: march
// transforms are compiled into ONE SchemePlan per campaign, not rebuilt per
// fault x seed.  Pinned via the plan-build counter for both backends and
// for a transform-heavy scheme.
TEST(SchemePlan, CompiledOncePerCampaign) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = some_faults();
  const std::vector<std::uint64_t> seeds{0, 1, 2};
  ASSERT_GT(faults.size() * seeds.size(), 64u) << "campaign must span many fault x seed units";

  for (CoverageBackend backend : {CoverageBackend::Scalar, CoverageBackend::Packed}) {
    for (SchemeKind k : {SchemeKind::ProposedExact, SchemeKind::ProposedSymmetricXor,
                         SchemeKind::Scheme1Exact}) {
      const CampaignRunner runner(kWords, kWidth, {backend, 2});
      const std::uint64_t before = scheme_plan_build_count();
      runner.evaluate(k, march, faults, seeds);
      EXPECT_EQ(scheme_plan_build_count() - before, 1u)
          << to_string(backend) << " / " << to_string(k);
    }
  }
}

TEST(SchemePlan, PerFaultAlsoCompilesOnce) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = some_faults();
  const CampaignRunner runner(kWords, kWidth);
  const std::uint64_t before = scheme_plan_build_count();
  runner.per_fault(SchemeKind::ProposedExact, march, faults, {0, 5});
  EXPECT_EQ(scheme_plan_build_count() - before, 1u);
}

// --- run_pool ----------------------------------------------------------

TEST(RunPool, ExecutesWorkOnEveryThread) {
  std::atomic<unsigned> calls{0};
  run_pool(4, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4u);
}

TEST(RunPool, SingleThreadRunsOnCaller) {
  std::atomic<unsigned> calls{0};
  run_pool(1, [&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1u);
}

// An exception thrown on any worker thread must surface on the caller, and
// every pool thread must still be joined (ASan/TSan would flag leaks).
TEST(RunPool, PropagatesWorkerException) {
  std::atomic<unsigned> entered{0};
  EXPECT_THROW(run_pool(4,
                        [&] {
                          // Exactly one worker (whichever claims ticket 2)
                          // fails; the others finish normally.
                          if (entered.fetch_add(1) == 2)
                            throw std::runtime_error("worker failed");
                        }),
               std::runtime_error);
  EXPECT_EQ(entered.load(), 4u) << "non-throwing workers must have run to completion";
}

TEST(RunPool, PropagatesExceptionFromCallingThreadToo) {
  EXPECT_THROW(run_pool(1, [] { throw std::invalid_argument("boom"); }), std::invalid_argument);
}

TEST(RunPool, FirstExceptionWinsWhenAllWorkersThrow) {
  EXPECT_THROW(run_pool(4, [] { throw std::runtime_error("every worker fails"); }),
               std::runtime_error);
}

// A worker exception inside a real campaign must propagate through
// CampaignRunner (here: TOMT's ledger validation tripped by a width-0-safe
// scheme misuse is hard to force, so use run_pool directly above and prove
// the campaign path with the golden-lane test below).

// --- packed golden lane ------------------------------------------------

TEST(GoldenLane, ClearMaskPasses) {
  EXPECT_NO_THROW(require_golden_lane_clear(0));
  EXPECT_NO_THROW(require_golden_lane_clear(~1ull));  // all fault lanes fired
}

TEST(GoldenLane, GoldenDetectionAborts) {
  EXPECT_THROW(require_golden_lane_clear(1ull), std::logic_error);
  EXPECT_THROW(require_golden_lane_clear(~0ull), std::logic_error);
}

// End-to-end: corrupt lane 0 deliberately (a fault injected into the golden
// lane) and check the session reports it and the campaign-side check
// aborts.  This is the self-check that keeps the packed backend honest.
TEST(GoldenLane, CorruptedLaneZeroSessionVerdictTriggersAbort) {
  const MarchTest march = march_by_name("March C-");
  const SchemePlan plan = make_scheme_plan(SchemeKind::ProposedExact, march, kWidth);

  PackedMemory mem(kWords, kWidth);
  mem.inject(Fault::saf({1, 2}, true), /*lanes=*/1ull);  // lane 0 = golden
  const LaneMask verdict = run_scheme_session<PackedEngine>(mem, plan, {});

  EXPECT_TRUE(verdict & 1ull) << "lane-0 fault must be detected in lane 0";
  EXPECT_THROW(require_golden_lane_clear(verdict), std::logic_error);
}

// Same self-check through a wide lane block: lane 0 of word 0 is the golden
// lane at every width.
TEST(GoldenLane, WideLaneZeroCorruptionTriggersAbort) {
  const MarchTest march = march_by_name("March C-");
  const SchemePlan plan = make_scheme_plan(SchemeKind::ProposedExact, march, kWidth);

  PackedMemoryT<LaneBlock<4>> mem(kWords, kWidth);
  mem.inject(Fault::saf({1, 2}, true), block_lane<LaneBlock<4>>(0));
  const LaneBlock<4> verdict = run_scheme_session<PackedEngineT<LaneBlock<4>>>(mem, plan, {});

  EXPECT_TRUE(block_bit(verdict, 0)) << "lane-0 fault must be detected in lane 0";
  EXPECT_THROW(require_golden_lane_clear(verdict.w[0]), std::logic_error);
}

// A fault in the last lane of a wide block must be reported in that slot
// and leave the golden lane clear (no phantom universes, no lane mixing).
TEST(GoldenLane, LastWideLaneVerdictLandsInItsSlot) {
  const MarchTest march = march_by_name("March C-");
  const SchemePlan plan = make_scheme_plan(SchemeKind::ProposedExact, march, kWidth);

  using Block = LaneBlock<8>;
  constexpr unsigned kLast = block_lanes_v<Block> - 1;
  PackedMemoryT<Block> mem(kWords, kWidth);
  mem.inject(Fault::saf({0, 1}, true), block_lane<Block>(kLast));
  const Block verdict = run_scheme_session<PackedEngineT<Block>>(mem, plan, {});

  EXPECT_TRUE(block_bit(verdict, kLast));
  EXPECT_FALSE(block_bit(verdict, 0));
  for (unsigned lane = 1; lane < kLast; ++lane)
    EXPECT_FALSE(block_bit(verdict, lane)) << lane;
}

// --- verdict matrix ----------------------------------------------------

TEST(VerdictMatrix, DimensionsAndDerivedVerdictsMatchAggregates) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = some_faults();
  const std::vector<std::uint64_t> seeds{0, 1, 7};
  const CampaignRunner runner(kWords, kWidth, {CoverageBackend::Packed, 2});

  const VerdictMatrix m = runner.matrix(SchemeKind::ProposedMisr, march, faults, seeds);
  ASSERT_EQ(m.num_faults, faults.size());
  ASSERT_EQ(m.num_seeds, seeds.size());
  ASSERT_EQ(m.bits.size(), faults.size() * seeds.size());

  const auto all = runner.per_fault(SchemeKind::ProposedMisr, march, faults, seeds);
  const auto outcome = runner.evaluate(SchemeKind::ProposedMisr, march, faults, seeds);
  std::size_t n_all = 0, n_any = 0;
  for (std::size_t f = 0; f < m.num_faults; ++f) {
    EXPECT_EQ(m.detected_all(f), all[f]) << "fault " << f;
    n_all += m.detected_all(f);
    n_any += m.detected_any(f);
  }
  EXPECT_EQ(n_all, outcome.detected_all);
  EXPECT_EQ(n_any, outcome.detected_any);
}

TEST(VerdictMatrix, BackendsProduceIdenticalMatrices) {
  const MarchTest march = march_by_name("March C-");
  const auto faults = some_faults();
  const std::vector<std::uint64_t> seeds{0, 3};
  const CampaignRunner scalar(kWords, kWidth, {CoverageBackend::Scalar, 1});
  const CampaignRunner packed(kWords, kWidth, {CoverageBackend::Packed, 3});

  for (SchemeKind k : {SchemeKind::NontransparentReference, SchemeKind::ProposedExact,
                       SchemeKind::TomtModel, SchemeKind::ProposedSymmetricXor}) {
    const VerdictMatrix ms = scalar.matrix(k, march, faults, seeds);
    const VerdictMatrix mp = packed.matrix(k, march, faults, seeds);
    EXPECT_EQ(ms.bits, mp.bits) << to_string(k);
  }
}

TEST(VerdictMatrix, SeedDependentFaultShowsMixedRow) {
  // A SAF stuck at the value the content already holds is silent under
  // zero contents for the symmetric XOR scheme only if aliased; instead
  // use per-seed TOMT verdicts which are content-independent, and TWMarch
  // SAF verdicts which are too — so assert at least that rows are
  // constant where theory says so: TWMarch detects every SAF under every
  // content.
  const MarchTest march = march_by_name("March C-");
  const auto safs = all_safs(kWords, kWidth);
  const CampaignRunner runner(kWords, kWidth, {CoverageBackend::Packed, 1});
  const VerdictMatrix m =
      runner.matrix(SchemeKind::ProposedExact, march, safs, {0, 1, 2});
  for (std::size_t f = 0; f < m.num_faults; ++f)
    for (std::size_t s = 0; s < m.num_seeds; ++s)
      EXPECT_TRUE(m.detected(f, s)) << "SAF " << f << " seed index " << s;
}

TEST(CampaignRunner, RejectsEmptySeeds) {
  const MarchTest march = march_by_name("March C-");
  const CampaignRunner runner(kWords, kWidth);
  EXPECT_THROW(runner.evaluate(SchemeKind::ProposedExact, march, some_faults(), {}),
               std::invalid_argument);
}

TEST(CampaignRunner, EmptyFaultListYieldsEmptyResults) {
  const MarchTest march = march_by_name("March C-");
  const CampaignRunner runner(kWords, kWidth);
  const std::uint64_t before = scheme_plan_build_count();
  EXPECT_EQ(runner.per_fault(SchemeKind::ProposedExact, march, {}, {0}).size(), 0u);
  EXPECT_EQ(runner.evaluate(SchemeKind::ProposedExact, march, {}, {0}).total, 0u);
  EXPECT_EQ(scheme_plan_build_count(), before) << "no faults -> no plan compiled";
}

// --- diagnosis campaign ------------------------------------------------

TEST(DiagnoseCampaign, LocalizesEverySafToItsWord) {
  const MarchTest march = march_by_name("March C-");
  const auto safs = all_safs(kWords, kWidth);
  const auto diags = diagnose_campaign(march, kWords, kWidth, safs, /*seed=*/3, /*threads=*/2);
  ASSERT_EQ(diags.size(), safs.size());
  for (std::size_t i = 0; i < safs.size(); ++i) {
    EXPECT_TRUE(diags[i].fault_found) << safs[i].describe();
    EXPECT_EQ(diags[i].suspect_word, safs[i].victim.word) << safs[i].describe();
  }
}

TEST(DiagnoseCampaign, ThreadCountDoesNotChangeDiagnoses) {
  const MarchTest march = march_by_name("March C-");
  const auto tfs = all_tfs(kWords, kWidth);
  const auto one = diagnose_campaign(march, kWords, kWidth, tfs, 9, 1);
  const auto many = diagnose_campaign(march, kWords, kWidth, tfs, 9, 4);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].fault_found, many[i].fault_found);
    EXPECT_EQ(one[i].suspect_word, many[i].suspect_word);
    EXPECT_EQ(one[i].location.stream_index, many[i].location.stream_index);
  }
}

TEST(DiagnoseCampaign, CompilesOnePlanForTheWholeCampaign) {
  const MarchTest march = march_by_name("March C-");
  const auto safs = all_safs(kWords, kWidth);
  const std::uint64_t before = scheme_plan_build_count();
  diagnose_campaign(march, kWords, kWidth, safs, 1, 2);
  EXPECT_EQ(scheme_plan_build_count() - before, 1u);
}

}  // namespace
}  // namespace twm
