// Tests for the SIMD width dispatcher (core/simd.h) and the lane-block
// vocabulary (memsim/lane_block.h) the width-templated packed stack is
// built on — including a direct differential of the wide PackedMemoryT
// instantiations against the scalar Memory (compiled in this TU without
// arch flags, so it runs on any host).
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "core/simd.h"
#include "memsim/memory.h"
#include "memsim/packed_memory.h"
#include "util/rng.h"

namespace twm {
namespace {

// --- simd dispatch -------------------------------------------------------

TEST(Simd, LanesMatchEnumValues) {
  EXPECT_EQ(simd::lanes(simd::Width::W64), 64u);
  EXPECT_EQ(simd::lanes(simd::Width::W256), 256u);
  EXPECT_EQ(simd::lanes(simd::Width::W512), 512u);
}

TEST(Simd, W64AlwaysSupported) { EXPECT_TRUE(simd::supported(simd::Width::W64)); }

TEST(Simd, BestWidthIsSupportedAndMaximal) {
  const simd::Width best = simd::best_width();
  EXPECT_TRUE(simd::supported(best));
  for (simd::Width w : simd::kAllWidths) {
    if (simd::lanes(w) > simd::lanes(best)) {
      EXPECT_FALSE(simd::supported(w));
    }
  }
}

TEST(Simd, ParseRequestRoundTrips) {
  EXPECT_EQ(simd::parse_request("auto"), simd::Request::Auto);
  EXPECT_EQ(simd::parse_request("64"), simd::Request::W64);
  EXPECT_EQ(simd::parse_request("256"), simd::Request::W256);
  EXPECT_EQ(simd::parse_request("512"), simd::Request::W512);
  EXPECT_EQ(simd::parse_request("tiled"), simd::Request::Tiled);
  EXPECT_EQ(simd::parse_request("tiled:4096"), simd::Request::Tiled4096);
  EXPECT_EQ(simd::parse_request("tiled:32768"), simd::Request::Tiled32768);
  EXPECT_FALSE(simd::parse_request("avx2").has_value());
  EXPECT_FALSE(simd::parse_request("").has_value());
  EXPECT_FALSE(simd::parse_request("65").has_value());
  EXPECT_FALSE(simd::parse_request("tiled:64").has_value());
  EXPECT_FALSE(simd::parse_request("tiled:").has_value());
}

TEST(Simd, TiledWidthsAlwaysSupportedAndNeverAuto) {
  for (simd::Width w : simd::kTiledWidths) {
    EXPECT_TRUE(simd::is_tiled(w));
    EXPECT_TRUE(simd::supported(w)) << simd::to_string(w);
  }
  for (simd::Width w : simd::kAllWidths) EXPECT_FALSE(simd::is_tiled(w));
  // Auto never picks a tiled width (tiles are an explicit opt-in).
  EXPECT_FALSE(simd::is_tiled(simd::best_width()));
  EXPECT_FALSE(simd::is_tiled(simd::resolve(simd::Request::Auto)));
  // The bare "tiled" request defers the size choice to resolve().
  EXPECT_EQ(simd::resolve(simd::Request::Tiled), simd::Width::Tiled4096);
  EXPECT_EQ(simd::resolve(simd::Request::Tiled4096), simd::Width::Tiled4096);
  EXPECT_EQ(simd::resolve(simd::Request::Tiled32768), simd::Width::Tiled32768);
}

TEST(Simd, ResolveAutoPicksBestAndForcedRespectsSupport) {
  EXPECT_EQ(simd::resolve(simd::Request::Auto), simd::best_width());
  EXPECT_EQ(simd::resolve(simd::Request::W64), simd::Width::W64);
  for (simd::Width w : {simd::Width::W256, simd::Width::W512}) {
    const simd::Request r = w == simd::Width::W256 ? simd::Request::W256 : simd::Request::W512;
    if (simd::supported(w))
      EXPECT_EQ(simd::resolve(r), w);
    else
      EXPECT_THROW(simd::resolve(r), std::runtime_error);
  }
}

TEST(Simd, ToStringSpellsLaneCounts) {
  EXPECT_EQ(simd::to_string(simd::Width::W512), "512");
  EXPECT_EQ(simd::to_string(simd::Width::Tiled4096), "tiled:4096");
  EXPECT_EQ(simd::to_string(simd::Width::Tiled32768), "tiled:32768");
  EXPECT_EQ(simd::to_string(simd::Request::Auto), "auto");
  EXPECT_EQ(simd::to_string(simd::Request::W256), "256");
  EXPECT_EQ(simd::to_string(simd::Request::Tiled), "tiled");
  EXPECT_EQ(simd::to_string(simd::Request::Tiled4096), "tiled:4096");
}

// --- lane-block vocabulary ----------------------------------------------

template <typename T>
class LaneBlockVocab : public ::testing::Test {};
using BlockTypes = ::testing::Types<std::uint64_t, LaneBlock<4>, LaneBlock<8>>;
TYPED_TEST_SUITE(LaneBlockVocab, BlockTypes);

TYPED_TEST(LaneBlockVocab, ZeroOnesAnyBit) {
  using Block = TypeParam;
  constexpr unsigned lanes = block_lanes_v<Block>;
  const Block zero{};
  const Block ones = block_ones<Block>();
  EXPECT_FALSE(block_any(zero));
  EXPECT_TRUE(block_any(ones));
  EXPECT_TRUE(zero == ~ones);
  for (unsigned lane : {0u, 1u, 63u, lanes - 1}) {
    EXPECT_FALSE(block_bit(zero, lane)) << lane;
    EXPECT_TRUE(block_bit(ones, lane)) << lane;
    const Block one = block_lane<Block>(lane);
    for (unsigned j = 0; j < lanes; ++j) EXPECT_EQ(block_bit(one, j), j == lane) << lane;
  }
}

TYPED_TEST(LaneBlockVocab, UsedMaskCoversFaultLanesOnly) {
  using Block = TypeParam;
  constexpr unsigned lanes = block_lanes_v<Block>;
  for (unsigned count : {0u, 1u, 3u, 63u, lanes - 1}) {
    const Block m = block_used_mask<Block>(count);
    EXPECT_FALSE(block_bit(m, 0)) << "golden lane in used mask, count " << count;
    for (unsigned lane = 1; lane < lanes; ++lane)
      EXPECT_EQ(block_bit(m, lane), lane <= count)
          << "count " << count << ", lane " << lane;
  }
  // The full batch uses every fault lane.
  EXPECT_TRUE(block_used_mask<Block>(lanes - 1) == ~block_lane<Block>(0));
}

// --- wide PackedMemoryT differential ------------------------------------

// Lanes spread across every 64-bit word of the block, including the last.
template <class Block>
std::vector<unsigned> probe_lanes() {
  constexpr unsigned lanes = block_lanes_v<Block>;
  std::vector<unsigned> out;
  for (unsigned lane = 1; lane < lanes; lane += 61) out.push_back(lane);
  out.push_back(lanes - 1);
  return out;
}

template <class Block>
void run_wide_differential() {
  const std::size_t words = 3;
  const unsigned width = 4;
  Rng rng(20260728);
  PackedMemoryT<Block> packed(words, width);
  std::map<unsigned, Memory> refs;
  refs.emplace(0u, Memory(words, width));

  unsigned which = 0;
  for (unsigned lane : probe_lanes<Block>()) {
    refs.emplace(lane, Memory(words, width));
    Fault f = Fault::saf({0, 0}, true);
    switch (which++ % 5) {
      case 0: f = Fault::saf({which % words, which % width}, which & 1); break;
      case 1: f = Fault::tf({which % words, 1}, Transition::Up); break;
      case 2: f = Fault::cfid({0, 0}, Transition::Up, {1, 1}, true); break;
      case 3: f = Fault::af_no_access(which % words); break;
      case 4: f = Fault::af_alias(0, 1); break;
    }
    packed.inject(f, block_lane<Block>(lane));
    refs.at(lane).inject(f);
  }

  std::vector<BitVec> contents;
  for (std::size_t a = 0; a < words; ++a) contents.push_back(rng.next_word(width));
  packed.load(contents);
  for (auto& [lane, ref] : refs) ref.load(contents);

  std::vector<Block> packed_data(width);
  for (int op = 0; op < 200; ++op) {
    const std::size_t addr = rng.next_below(words);
    if (rng.next_below(4) == 0) {
      const Block* v = packed.read(addr);
      for (auto& [lane, ref] : refs) {
        const BitVec expected = ref.read(addr);
        for (unsigned j = 0; j < width; ++j)
          ASSERT_EQ(block_bit(v[j], lane), expected.get(j))
              << "op " << op << ", lane " << lane << ", bit " << j;
      }
    } else {
      const BitVec data = rng.next_word(width);
      for (unsigned j = 0; j < width; ++j)
        packed_data[j] = data.get(j) ? block_ones<Block>() : Block{};
      packed.write(addr, packed_data.data());
      for (auto& [lane, ref] : refs) ref.write(addr, data);
    }
    for (auto& [lane, ref] : refs)
      for (std::size_t a = 0; a < words; ++a)
        ASSERT_EQ(packed.lane_word(lane, a), ref.peek(a)) << "op " << op << ", lane " << lane;
  }
}

TEST(WidePackedMemory, LaneBlock4TracksScalarReplicas) { run_wide_differential<LaneBlock<4>>(); }
TEST(WidePackedMemory, LaneBlock8TracksScalarReplicas) { run_wide_differential<LaneBlock<8>>(); }

}  // namespace
}  // namespace twm
