// Tests for the address-decoder fault model and its detection by
// (transparent) march tests.
#include <gtest/gtest.h>

#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/word_expand.h"
#include "memsim/decoder_fault.h"
#include "util/rng.h"

namespace twm {
namespace {

BitVec bv(const std::string& s) { return BitVec::from_string(s); }

TEST(DecoderFault, InjectionValidation) {
  Memory inner(4, 4);
  DecoderFaultMemory mem(inner);
  EXPECT_THROW(mem.inject_no_access(4), std::out_of_range);
  EXPECT_THROW(mem.inject_alias(0, 4), std::out_of_range);
  EXPECT_THROW(mem.inject_alias(2, 2), std::invalid_argument);
  EXPECT_FALSE(mem.is_faulted(1));
  mem.inject_alias(1, 2);
  EXPECT_TRUE(mem.is_faulted(1));
}

TEST(DecoderFault, NoAccessLosesWritesAndFloatsReads) {
  Memory inner(4, 4);
  DecoderFaultMemory mem(inner);
  mem.inject_no_access(2);
  mem.write(2, bv("1111"));
  EXPECT_EQ(mem.read(2), bv("0000"));      // floating bus
  EXPECT_EQ(inner.peek(2), bv("0000"));    // cell untouched
  mem.write(1, bv("1010"));                // healthy neighbours unaffected
  EXPECT_EQ(mem.read(1), bv("1010"));
}

TEST(DecoderFault, AliasWritesBothAndMergesReads) {
  Memory inner(4, 4);
  DecoderFaultMemory mem(inner, DecoderFaultMemory::ReadMerge::And);
  mem.inject_alias(0, 3);
  mem.write(0, bv("1100"));
  EXPECT_EQ(inner.peek(0), bv("1100"));
  EXPECT_EQ(inner.peek(3), bv("1100"));  // multi-write
  // Disturb the aliased cell through its own address, then read address 0:
  // wired-AND merge.
  mem.write(3, bv("1010"));
  EXPECT_EQ(mem.read(0), bv("1000"));
}

TEST(DecoderFault, OrMergeVariant) {
  Memory inner(2, 4);
  DecoderFaultMemory mem(inner, DecoderFaultMemory::ReadMerge::Or);
  mem.inject_alias(0, 1);
  inner.load({bv("1100"), bv("1010")});
  EXPECT_EQ(mem.read(0), bv("1110"));
}

// March C- (word-oriented, nontransparent) detects both AF types.
TEST(DecoderFault, WordOrientedMarchDetectsAfs) {
  const MarchTest wo = word_oriented_march(march_by_name("March C-"), 4);
  {
    Memory inner(8, 4);
    DecoderFaultMemory mem(inner);
    mem.inject_no_access(5);
    MarchRunner runner(mem);
    EXPECT_TRUE(runner.run_direct(wo).mismatch);
  }
  {
    Memory inner(8, 4);
    DecoderFaultMemory mem(inner);
    mem.inject_alias(2, 6);
    MarchRunner runner(mem);
    EXPECT_TRUE(runner.run_direct(wo).mismatch);
  }
}

// The transparent TWMarch must keep that detection capability.
TEST(DecoderFault, TwmarchDetectsAliasTransparently) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 4);
  for (auto [a, b] : {std::pair<std::size_t, std::size_t>{0, 1}, {3, 7}, {6, 2}}) {
    Rng rng(31);
    Memory inner(8, 4);
    inner.fill_random(rng);
    DecoderFaultMemory mem(inner);
    mem.inject_alias(a, b);
    MarchRunner runner(mem);
    const auto out = runner.run_transparent_session(r.twmarch, r.prediction, 16);
    EXPECT_TRUE(out.detected_exact) << a << "->" << b;
  }
}

TEST(DecoderFault, TwmarchDetectsNoAccessTransparently) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 4);
  Rng rng(32);
  Memory inner(8, 4);
  inner.fill_random(rng);
  DecoderFaultMemory mem(inner);
  mem.inject_no_access(4);
  MarchRunner runner(mem);
  // A dead address reads constant zeros while the test expects the solid
  // inversions to show up: first r(~a) mismatches.
  EXPECT_TRUE(runner.run_transparent_session(r.twmarch, r.prediction, 16).detected_exact);
}

TEST(DecoderFault, FaultFreeWrapperIsTransparentPassThrough) {
  Rng rng(33);
  Memory inner(8, 4);
  inner.fill_random(rng);
  const auto snapshot = inner.snapshot();
  DecoderFaultMemory mem(inner);

  const TwmResult r = twm_transform(march_by_name("March U"), 4);
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(r.twmarch, r.prediction, 16);
  EXPECT_FALSE(out.detected_exact);
  EXPECT_TRUE(inner.equals(snapshot));
}

}  // namespace
}  // namespace twm
