// Tests for the segment view and segmented transparent scrubbing.
#include <gtest/gtest.h>

#include "analysis/fault_list.h"
#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/segment.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Segment, WindowValidation) {
  Memory mem(8, 4);
  EXPECT_THROW(SegmentView(mem, 4, 5), std::invalid_argument);
  EXPECT_THROW(SegmentView(mem, 0, 0), std::invalid_argument);
  SegmentView ok(mem, 6, 2);
  EXPECT_EQ(ok.num_words(), 2u);
  EXPECT_THROW(ok.read(2), std::out_of_range);
}

TEST(Segment, TranslatesAddresses) {
  Memory mem(8, 4);
  SegmentView view(mem, 4, 4);
  view.write(0, BitVec::from_string("1010"));
  EXPECT_EQ(mem.peek(4).to_string(), "1010");
  EXPECT_EQ(view.read(0).to_string(), "1010");
  EXPECT_EQ(view.word_width(), 4u);
}

TEST(Segment, TransparentSessionPerSegmentPreservesAll) {
  Rng rng(9);
  Memory mem(16, 8);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();
  const TwmResult twm = twm_transform(march_by_name("March C-"), 8);
  for (std::size_t s = 0; s < 4; ++s) {
    SegmentView view(mem, s * 4, 4);
    MarchRunner runner(view);
    const auto out = runner.run_transparent_session(twm.twmarch, twm.prediction, 8);
    EXPECT_FALSE(out.detected_exact) << "segment " << s;
  }
  EXPECT_TRUE(mem.equals(snapshot));
}

TEST(Segment, IntraSegmentFaultsStayDetected) {
  const TwmResult twm = twm_transform(march_by_name("March C-"), 8);
  Rng rng(10);
  Memory mem(16, 8);
  mem.fill_random(rng);
  mem.inject(Fault::cfid({2, 0}, Transition::Up, {3, 5}, true));  // both in segment 0
  bool detected = false;
  for (std::size_t s = 0; s < 4 && !detected; ++s) {
    SegmentView view(mem, s * 4, 4);
    MarchRunner runner(view);
    detected = runner.run_transparent_session(twm.twmarch, twm.prediction, 8).detected_exact;
  }
  EXPECT_TRUE(detected);
}

TEST(Segment, CrossSegmentCouplingCanEscape) {
  // Aggressor in segment 0, victim in segment 3: when the victim's segment
  // is tested, the aggressor never transitions; when the aggressor's is,
  // the victim's corruption is never read inside the session.  (The victim
  // value is restored... no — it stays corrupted, but transparent testing
  // of segment 3 later re-baselines on the corrupted value.)
  const TwmResult twm = twm_transform(march_by_name("March C-"), 8);
  Memory mem(16, 8);  // zero contents: deterministic
  mem.inject(Fault::cfid({1, 0}, Transition::Up, {13, 0}, true));

  bool detected = false;
  for (std::size_t s = 0; s < 4 && !detected; ++s) {
    SegmentView view(mem, s * 4, 4);
    MarchRunner runner(view);
    detected = runner.run_transparent_session(twm.twmarch, twm.prediction, 8).detected_exact;
  }
  EXPECT_FALSE(detected);

  // The unsegmented session sees it.
  Memory whole(16, 8);
  whole.inject(Fault::cfid({1, 0}, Transition::Up, {13, 0}, true));
  MarchRunner runner(whole);
  EXPECT_TRUE(runner.run_transparent_session(twm.twmarch, twm.prediction, 8).detected_exact);
}

TEST(Segment, SegmentedCoverageDropsOnlyOnCrossPairs) {
  const std::size_t words = 8;
  const unsigned width = 4;
  const TwmResult twm = twm_transform(march_by_name("March C-"), width);
  const auto faults = all_cfs(words, width, FaultClass::CFid, CfScope::InterWord);

  auto detect = [&](const Fault& f, std::size_t segments) {
    Memory mem(words, width);
    Rng rng(4);
    mem.fill_random(rng);
    mem.inject(f);
    const std::size_t seg_len = words / segments;
    for (std::size_t s = 0; s < segments; ++s) {
      SegmentView view(mem, s * seg_len, seg_len);
      MarchRunner runner(view);
      if (runner.run_transparent_session(twm.twmarch, twm.prediction, width).detected_exact)
        return true;
    }
    return false;
  };

  for (const Fault& f : faults) {
    const bool whole = detect(f, 1);
    const bool halves = detect(f, 2);
    const bool same_half = (f.aggressor.word / 4) == (f.victim.word / 4);
    if (same_half)
      EXPECT_EQ(whole, halves) << f.describe();
    else
      EXPECT_FALSE(halves) << f.describe() << " crosses the boundary";
  }
}

}  // namespace
}  // namespace twm
