// Tests for the BIST substrate: MISR, LFSR, address generation, and the
// march execution engine (direct, test-pass, prediction-pass semantics).
#include <gtest/gtest.h>

#include <set>

#include "bist/address_gen.h"
#include "bist/engine.h"
#include "bist/lfsr.h"
#include "bist/misr.h"
#include "core/nicolaidis.h"
#include "march/library.h"
#include "march/parser.h"
#include "march/word_expand.h"
#include "util/rng.h"

namespace twm {
namespace {

BitVec bv(const std::string& s) { return BitVec::from_string(s); }

// --- MISR ----------------------------------------------------------------

TEST(Misr, ZeroWidthRejected) { EXPECT_THROW(Misr(0), std::invalid_argument); }

TEST(Misr, BadTapRejected) { EXPECT_THROW(Misr(8, {8}), std::invalid_argument); }

TEST(Misr, DeterministicAndResettable) {
  Misr a(16), b(16);
  Rng rng(5);
  std::vector<BitVec> inputs;
  for (int i = 0; i < 20; ++i) inputs.push_back(rng.next_word(16));
  for (const auto& v : inputs) {
    a.feed(v);
    b.feed(v);
  }
  EXPECT_EQ(a.signature(), b.signature());
  a.reset();
  EXPECT_TRUE(a.signature().all_zero());
}

TEST(Misr, OrderSensitive) {
  Misr a(16), b(16);
  a.feed(bv("0000000000000001"));
  a.feed(bv("0000000000000010"));
  b.feed(bv("0000000000000010"));
  b.feed(bv("0000000000000001"));
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, SingleBitStreamDifferenceChangesSignature) {
  for (unsigned w : {8u, 16u, 32u}) {
    Misr a(w), b(w);
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
      BitVec v = rng.next_word(w);
      a.feed(v);
      if (i == 25) v.flip(0);
      b.feed(v);
    }
    EXPECT_NE(a.signature(), b.signature()) << "width " << w;
  }
}

TEST(Misr, FoldsWiderInputs) {
  Misr m(8);
  m.feed(BitVec::ones(16));  // two all-one chunks cancel
  EXPECT_TRUE(m.signature().all_zero());
  m.feed(BitVec::ones(8));
  EXPECT_FALSE(m.signature().all_zero());
}

TEST(Misr, DefaultTapsCoverDocumentedWidths) {
  for (unsigned w : {2u, 3u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto taps = Misr::default_taps(w);
    EXPECT_FALSE(taps.empty());
    for (unsigned t : taps) EXPECT_LT(t, w);
  }
}

// A width-W LFSR-based MISR driven by constant zero input cycles through
// many distinct states (sanity of the feedback polynomial).
TEST(Misr, FeedbackProducesLongZeroInputOrbit) {
  Misr m(8);
  m.feed(bv("00000001"));
  std::set<std::string> seen;
  for (int i = 0; i < 254; ++i) {
    m.feed(BitVec::zeros(8));
    EXPECT_TRUE(seen.insert(m.signature().to_string()).second) << "state repeated at " << i;
  }
}

// --- LFSR ----------------------------------------------------------------

TEST(Lfsr, RejectsZeroSeed) { EXPECT_THROW(Lfsr(8, 0), std::invalid_argument); }

TEST(Lfsr, NeverReachesZeroAndEventuallyRepeats) {
  Lfsr l(8, 1);
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) {
    const BitVec& s = l.next();
    EXPECT_FALSE(s.all_zero());
    seen.insert(s.to_string());
  }
  EXPECT_GT(seen.size(), 100u);  // long orbit
}

// --- AddressGen ------------------------------------------------------------

TEST(AddressGen, UpSequence) {
  EXPECT_EQ(AddressGen::sequence(AddrOrder::Up, 4), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(AddressGen, DownSequence) {
  EXPECT_EQ(AddressGen::sequence(AddrOrder::Down, 4), (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(AddressGen, AnyIsAscendingConvention) {
  EXPECT_EQ(AddressGen::sequence(AddrOrder::Any, 3), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(AddressGen, SingleWord) {
  EXPECT_EQ(AddressGen::sequence(AddrOrder::Down, 1), (std::vector<std::size_t>{0}));
}

TEST(AddressGen, EmptyRejected) { EXPECT_THROW(AddressGen(AddrOrder::Up, 0), std::invalid_argument); }

TEST(AddressGen, AdvancePastEndThrows) {
  AddressGen g(AddrOrder::Up, 1);
  g.advance();
  EXPECT_TRUE(g.done());
  EXPECT_THROW(g.advance(), std::logic_error);
}

// --- engine: direct runs ---------------------------------------------------

TEST(Engine, DirectFaultFreeHasNoMismatch) {
  Memory mem(8, 4);
  MarchRunner runner(mem);
  for (const auto& name : march_names()) {
    const auto res = runner.run_direct(solid_march(march_by_name(name)));
    EXPECT_FALSE(res.mismatch) << name;
    EXPECT_EQ(res.mismatch_count, 0u) << name;
  }
}

TEST(Engine, DirectDetectsSafWithDiagnosis) {
  Memory mem(8, 4);
  mem.inject(Fault::saf({3, 1}, true));
  MarchRunner runner(mem);
  const auto res = runner.run_direct(solid_march(march_by_name("March C-")));
  ASSERT_TRUE(res.mismatch);
  EXPECT_EQ(res.fail_addr, 3u);  // first observation is at the faulty word
  EXPECT_TRUE(res.actual.get(1));
  EXPECT_FALSE(res.expected.get(1));
}

TEST(Engine, DirectRejectsTransparentTests) {
  Memory mem(4, 4);
  MarchRunner runner(mem);
  const MarchTest t = nicolaidis_transparent(march_by_name("March C-"));
  EXPECT_THROW(runner.run_direct(t), std::invalid_argument);
}

TEST(Engine, DirectRunsWordOrientedMarch) {
  Memory mem(6, 8);
  MarchRunner runner(mem);
  const auto res = runner.run_direct(word_oriented_march(march_by_name("March C-"), 8));
  EXPECT_FALSE(res.mismatch);
}

// --- engine: transparent passes -------------------------------------------

TEST(Engine, PredictionRejectsWrites) {
  Memory mem(4, 4);
  MarchRunner runner(mem);
  StreamRecorder sink;
  EXPECT_THROW(runner.run_prediction(solid_march(march_by_name("MATS")), sink),
               std::invalid_argument);
}

TEST(Engine, TestPassRequiresReadBeforeTransparentWrite) {
  Memory mem(4, 4);
  MarchRunner runner(mem);
  MarchTest bad = parse_march("{ up(w1) }");
  for (auto& e : bad.elements)
    for (auto& op : e.ops) op.data.relative = true;
  StreamRecorder sink;
  EXPECT_THROW(runner.run_test(bad, sink), std::logic_error);
}

TEST(Engine, FaultFreeSessionSignaturesAgree) {
  Rng rng(17);
  Memory mem(16, 8);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();

  const MarchTest t = nicolaidis_transparent(solid_march(march_by_name("March C-")));
  const MarchTest p = prediction_test(t);
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(t, p, 8);
  EXPECT_FALSE(out.detected_exact);
  EXPECT_FALSE(out.detected_misr);
  EXPECT_EQ(out.signature_predicted, out.signature_observed);
  EXPECT_TRUE(mem.equals(snapshot));  // transparency
}

TEST(Engine, SessionDetectsInjectedTf) {
  Rng rng(23);
  Memory mem(16, 8);
  mem.fill_random(rng);
  mem.inject(Fault::tf({5, 3}, Transition::Up));

  const MarchTest t = nicolaidis_transparent(solid_march(march_by_name("March C-")));
  const MarchTest p = prediction_test(t);
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(t, p, 8);
  EXPECT_TRUE(out.detected_exact);
  EXPECT_TRUE(out.detected_misr);
}

TEST(Engine, ObserverSeesEveryOperation) {
  struct Counter final : EngineObserver {
    std::size_t n = 0;
    void on_op(std::size_t, std::size_t, std::size_t, const Op&, const BitVec&) override { ++n; }
  } counter;
  Memory mem(4, 4);
  MarchRunner runner(mem);
  runner.set_observer(&counter);
  const MarchTest s = solid_march(march_by_name("March C-"));
  runner.run_direct(s);
  EXPECT_EQ(counter.n, s.op_count() * mem.num_words());
}

TEST(Engine, StreamRecorderEquality) {
  StreamRecorder a, b;
  a.on_read(0, bv("01"));
  b.on_read(0, bv("01"));
  EXPECT_TRUE(a == b);
  b.on_read(1, bv("10"));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace twm
