// Region-sharded scheduling and checkpoint/resume (the huge-memory
// campaign surface): the fault list split by victim address slice must
// merge to verdicts byte-identical to the unsharded run for every backend
// and scheduler, a checkpointed campaign interrupted mid-run must resume
// by replaying completed regions instead of re-simulating them, and the
// content-addressed cache identity must be unchanged by the shard count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "api/checkpoint.h"
#include "api/runner.h"
#include "api/sink.h"
#include "api/spec.h"
#include "march/library.h"
#include "memsim/packed_memory.h"

namespace twm::api {
namespace {

// ---- region ownership -------------------------------------------------

TEST(FaultRegionTest, PartitionsByVictimWordSlice) {
  // 100 words, 4 regions -> 25-word slices.
  EXPECT_EQ(fault_region(Fault::saf({0, 0}, true), 100, 4), 0u);
  EXPECT_EQ(fault_region(Fault::saf({24, 0}, true), 100, 4), 0u);
  EXPECT_EQ(fault_region(Fault::saf({25, 0}, true), 100, 4), 1u);
  EXPECT_EQ(fault_region(Fault::saf({99, 0}, true), 100, 4), 3u);
  // Inter-region couplings follow their VICTIM.
  EXPECT_EQ(fault_region(Fault::cfid({99, 0}, Transition::Up, {3, 1}, true), 100, 4), 0u);
  EXPECT_EQ(fault_region(Fault::cfst({0, 0}, true, {99, 1}, false), 100, 4), 3u);
  // regions = 1 is the identity partition.
  EXPECT_EQ(fault_region(Fault::saf({99, 0}, true), 100, 1), 0u);
}

// ---- verdict identity across region counts ------------------------------

TEST(RegionShardingTest, MergedVerdictsAreByteIdenticalToUnsharded) {
  const std::size_t words = 40;
  const unsigned width = 4;
  const MarchTest march = march_by_name("March C-");
  const std::vector<std::uint64_t> seeds = {0, 1, 2};

  // A fault mix that couples across region boundaries.
  std::vector<Fault> faults = all_safs(words, width);
  for (const Fault& f : all_tfs(words, width)) faults.push_back(f);
  faults.push_back(Fault::cfid({39, 0}, Transition::Up, {0, 1}, true));
  faults.push_back(Fault::cfst({0, 2}, true, {39, 3}, false));
  faults.push_back(Fault::af_alias(12, 31));

  for (const CoverageBackend backend : {CoverageBackend::Scalar, CoverageBackend::Packed}) {
    for (const ScheduleMode schedule : {ScheduleMode::Dense, ScheduleMode::Repack}) {
      for (const bool collapse : {false, true}) {
        CoverageOptions base;
        base.backend = backend;
        base.threads = 2;
        base.schedule = schedule;
        base.collapse = collapse;
        const std::string ctx = to_string(backend) + "/" + to_string(schedule) +
                                (collapse ? "/collapse" : "/no-collapse");

        CoverageOptions sharded = base;
        sharded.regions = 4;
        const CampaignRunner one(words, width, base);
        const CampaignRunner four(words, width, sharded);

        const VerdictMatrix m1 = one.matrix(SchemeKind::ProposedExact, march, faults, seeds);
        const VerdictMatrix m4 = four.matrix(SchemeKind::ProposedExact, march, faults, seeds);
        ASSERT_EQ(m1.num_faults, m4.num_faults) << ctx;
        ASSERT_EQ(m1.num_seeds, m4.num_seeds) << ctx;
        EXPECT_EQ(m1.bits, m4.bits) << ctx << ": region merge must be byte-identical";

        // Scheme 2 exercises the parity-ledger path as well.
        const VerdictMatrix t1 = one.matrix(SchemeKind::TomtModel, march, faults, seeds);
        const VerdictMatrix t4 = four.matrix(SchemeKind::TomtModel, march, faults, seeds);
        EXPECT_EQ(t1.bits, t4.bits) << ctx << " (tomt)";
      }
    }
  }
}

TEST(RegionShardingTest, StatsSumAcrossRegionsWithoutCollapsing) {
  // With collapsing off, the sharded run simulates exactly the same fault
  // set — the forward-progress counters must sum to the unsharded run's.
  const std::size_t words = 32;
  const unsigned width = 2;
  const MarchTest march = march_by_name("March C-");
  const std::vector<Fault> faults = all_safs(words, width);
  const std::vector<std::uint64_t> seeds = {0, 1};

  CoverageOptions base;
  base.backend = CoverageBackend::Packed;
  base.schedule = ScheduleMode::Repack;
  base.collapse = false;
  CoverageOptions sharded = base;
  sharded.regions = 4;

  CampaignStats s1, s4;
  const auto v1 = CampaignRunner(words, width, base)
                      .per_fault(SchemeKind::ProposedExact, march, faults, seeds, &s1);
  const auto v4 = CampaignRunner(words, width, sharded)
                      .per_fault(SchemeKind::ProposedExact, march, faults, seeds, &s4);
  EXPECT_EQ(v1, v4);
  EXPECT_EQ(s1.faults_simulated.load(), s4.faults_simulated.load());
  EXPECT_EQ(s1.lane_slots.load(), s4.lane_slots.load());
  // The repack scheduler reports the peak pages any worker materialized.
  EXPECT_GT(s4.pages_peak.load(), 0u);
  EXPECT_LE(s4.pages_peak.load(), (words + kMemPageWords - 1) / kMemPageWords);
}

TEST(RegionShardingTest, PackedPagesAreBoundedByTheFaultFootprint) {
  // Large geometry, faults confined to a handful of spread-out words: the
  // march walk touches every page (in the cheap lane-uniform scalar form)
  // but only the fault footprint is promoted to lane blocks — the
  // huge-memory memory-budget claim, measurable.
  const std::size_t words = 64 * 1024;  // 1024 pages
  const unsigned width = 2;
  const MarchTest march = march_by_name("March C-");
  std::vector<Fault> faults;
  for (std::size_t w = 0; w < words; w += words / 8)  // 8 words, 8 distinct pages
    for (unsigned b = 0; b < width; ++b)
      for (bool v : {false, true}) faults.push_back(Fault::saf(CellAddr{w, b}, v));

  CoverageOptions opt;
  opt.backend = CoverageBackend::Packed;
  opt.schedule = ScheduleMode::Repack;
  opt.regions = 4;
  CampaignStats stats;
  const auto v = CampaignRunner(words, width, opt)
                     .per_fault(SchemeKind::ProposedExact, march, faults, {0}, &stats);
  EXPECT_EQ(v, std::vector<bool>(faults.size(), true));
  // Every page is touched by the walk; at most the 8 footprint pages (2 per
  // region, really) ever hold lane blocks.
  EXPECT_EQ(stats.pages_peak.load(), (words + kMemPageWords - 1) / kMemPageWords);
  EXPECT_GT(stats.packed_pages_peak.load(), 0u);
  EXPECT_LE(stats.packed_pages_peak.load(), 8u);
}

// ---- checkpoint file format ---------------------------------------------

TEST(CheckpointFileTest, RoundTripsAndRejectsForeignFiles) {
  const std::string path = "checkpoint_roundtrip_test.json";
  std::remove(path.c_str());

  EXPECT_FALSE(load_checkpoint(path).has_value()) << "missing file is not an error";

  CheckpointFile file;
  file.regions = 4;
  file.cells.push_back({"{\"cell\":\"a\"}", 0, {{0, true, true}, {1, false, true}}});
  file.cells.push_back({"{\"cell\":\"a\"}", 2, {{9, true, true}}});
  save_checkpoint(path, file);

  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->regions, 4u);
  ASSERT_EQ(loaded->cells.size(), 2u);
  EXPECT_EQ(loaded->cells[0].identity, "{\"cell\":\"a\"}");
  EXPECT_EQ(loaded->cells[0].region, 0u);
  EXPECT_EQ(loaded->cells[0].units,
            (std::vector<CachedUnit>{{0, true, true}, {1, false, true}}));
  EXPECT_EQ(loaded->cells[1].region, 2u);

  // A truncated/garbage file degrades to "no checkpoint", never to wrong
  // results or a crash.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"checkpoint\":1,\"engine\":\"";
  }
  EXPECT_FALSE(load_checkpoint(path).has_value());

  // A foreign engine revision is not resumable (its verdicts may differ).
  {
    std::ofstream out(path, std::ios::trunc);
    out << R"({"checkpoint":1,"engine":"other-engine","regions":4,"cells":[]})";
  }
  EXPECT_FALSE(load_checkpoint(path).has_value());

  // An unknown format version is not resumable either.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"checkpoint\":2,\"engine\":\"" << engine_revision()
        << "\",\"regions\":4,\"cells\":[]}";
  }
  EXPECT_FALSE(load_checkpoint(path).has_value());

  // A region index out of range poisons the whole file.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"checkpoint\":1,\"engine\":\"" << engine_revision()
        << "\",\"regions\":2,\"cells\":[{\"identity\":\"x\",\"region\":2,\"units\":[]}]}";
  }
  EXPECT_FALSE(load_checkpoint(path).has_value());

  std::remove(path.c_str());
}

// ---- checkpoint/resume through run_campaign ------------------------------

// The symmetric scheme misses many TFs, so the verdict stream is
// non-trivial (a broken merge/replay cannot hide behind all-detected).
CampaignSpec regioned_spec() {
  CampaignSpec s;
  s.name = "checkpoint-test";
  s.words = 32;
  s.width = 4;
  s.march = "March C-";
  s.schemes = {SchemeKind::ProposedSymmetricXor};
  s.classes = {{ClassKind::Tf, CfScope::Both}};  // 32*4*2 = 256 faults
  s.seeds = {0, 1};
  s.backend = CoverageBackend::Scalar;
  s.threads = 1;
  s.regions = 4;  // 64 faults per region
  return s;
}

std::map<std::uint64_t, std::pair<bool, bool>> verdicts_by_fault(
    const std::vector<CollectingSink::StoredUnit>& units) {
  std::map<std::uint64_t, std::pair<bool, bool>> out;
  for (const auto& u : units) out[u.fault_index] = {u.detected_all, u.detected_any};
  return out;
}

TEST(CheckpointResumeTest, InterruptedCampaignResumesWithoutChangingVerdicts) {
  const std::string path = "checkpoint_resume_test.json";
  std::remove(path.c_str());
  const CampaignSpec spec = regioned_spec();

  // Reference: the uncheckpointed, uncancelled run.  Not all-detected —
  // otherwise the verdict-equality assertions below prove nothing.
  CollectingSink reference;
  const CampaignSummary want = run_campaign(spec, &reference);
  ASSERT_EQ(reference.units.size(), 256u);
  ASSERT_EQ(want.cells.size(), 1u);
  ASSERT_LT(want.cells[0].outcome.detected_all, want.cells[0].outcome.total);
  ASSERT_GT(want.cells[0].outcome.detected_all, 0u);

  // Interrupt during region 1: region 0's 64 units settled, so the
  // checkpoint must hold exactly region 0 (a cancelled region is never
  // reported done).
  CollectingSink interrupted(/*cancel_after_units=*/100);
  const CampaignSummary cancelled =
      run_campaign(spec, &interrupted, nullptr, nullptr, path);
  EXPECT_TRUE(cancelled.cancelled);
  {
    const auto ck = load_checkpoint(path);
    ASSERT_TRUE(ck.has_value());
    EXPECT_EQ(ck->regions, 4u);
    ASSERT_EQ(ck->cells.size(), 1u) << "only region 0 completed before the cancel";
    EXPECT_EQ(ck->cells[0].region, 0u);
    EXPECT_EQ(ck->cells[0].units.size(), 64u);
  }

  // Resume: completed regions replay, the rest simulate; the merged stream
  // and aggregates equal the reference.
  CollectingSink resumed;
  const CampaignSummary done = run_campaign(spec, &resumed, nullptr, nullptr, path);
  EXPECT_FALSE(done.cancelled);
  ASSERT_EQ(resumed.units.size(), 256u);
  EXPECT_EQ(verdicts_by_fault(resumed.units), verdicts_by_fault(reference.units));
  ASSERT_EQ(done.cells.size(), 1u);
  EXPECT_EQ(done.cells[0].outcome.detected_all, want.cells[0].outcome.detected_all);
  EXPECT_EQ(done.cells[0].outcome.detected_any, want.cells[0].outcome.detected_any);

  // The finished file holds every region.
  {
    const auto ck = load_checkpoint(path);
    ASSERT_TRUE(ck.has_value());
    EXPECT_EQ(ck->cells.size(), 4u);
  }

  // A fully-checkpointed campaign replays without simulating anything: a
  // sink that cancels after ONE unit still receives the complete stream,
  // which is only possible if no unit ran live.
  CollectingSink replay_only(/*cancel_after_units=*/1);
  const CampaignSummary replayed = run_campaign(spec, &replay_only, nullptr, nullptr, path);
  EXPECT_EQ(replay_only.units.size(), 256u);
  ASSERT_EQ(replayed.cells.size(), 1u);
  EXPECT_EQ(replayed.cells[0].outcome.detected_all, want.cells[0].outcome.detected_all);

  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, ForeignOrMismatchedCheckpointIsIgnored) {
  const std::string path = "checkpoint_mismatch_test.json";
  std::remove(path.c_str());
  const CampaignSpec spec = regioned_spec();

  // Complete a checkpoint, then run a DIFFERENT spec against it: no entry
  // matches the new identities, so everything simulates and the verdicts
  // are untouched.
  run_campaign(spec, nullptr, nullptr, nullptr, path);
  CampaignSpec other = regioned_spec();
  other.seeds = {5, 6};
  CollectingSink fresh;
  const CampaignSummary summary = run_campaign(other, &fresh, nullptr, nullptr, path);
  EXPECT_EQ(fresh.units.size(), 256u);
  EXPECT_FALSE(summary.cancelled);

  CollectingSink direct;
  run_campaign(other, &direct);
  EXPECT_EQ(verdicts_by_fault(fresh.units), verdicts_by_fault(direct.units));

  // A checkpoint denominated in a different region count is ignored too:
  // the run simulates from scratch and matches its own unsharded verdicts.
  CampaignSpec recut = regioned_spec();
  recut.regions = 2;
  CollectingSink recut_sink;
  run_campaign(recut, &recut_sink, nullptr, nullptr, path);
  CollectingSink recut_direct;
  run_campaign(recut, &recut_direct);
  EXPECT_EQ(verdicts_by_fault(recut_sink.units), verdicts_by_fault(recut_direct.units));

  std::remove(path.c_str());
}

// ---- cache identity across region counts ----------------------------------

class MapCache : public CellCache {
 public:
  std::optional<CellRecords> lookup(const std::string& key,
                                    const std::string& identity) override {
    const auto it = store_.find(key);
    if (it == store_.end() || it->second.first != identity) return std::nullopt;
    return it->second.second;
  }
  void store(const std::string& key, const std::string& identity,
             const CellRecords& records) override {
    store_[key] = {identity, records};
  }

 private:
  std::map<std::string, std::pair<std::string, CellRecords>> store_;
};

TEST(RegionShardingTest, CacheCellsAreSharedAcrossRegionCounts) {
  // Region sharding is execution-transparent, so a cell simulated at
  // regions=1 must replay for the same spec at regions=4 — zero
  // re-simulation, identical aggregates.
  CampaignSpec spec = regioned_spec();
  spec.regions = 1;
  spec.classes = {{ClassKind::Saf, CfScope::Both}, {ClassKind::Tf, CfScope::Both}};

  MapCache cache;
  CacheStats first_stats;
  const CampaignSummary first = run_campaign(spec, nullptr, &cache, &first_stats);
  EXPECT_EQ(first_stats.cells_simulated, 2u);
  EXPECT_EQ(first_stats.cells_cached, 0u);

  spec.regions = 4;
  CacheStats second_stats;
  const CampaignSummary second = run_campaign(spec, nullptr, &cache, &second_stats);
  EXPECT_EQ(second_stats.cells_simulated, 0u);
  EXPECT_EQ(second_stats.cells_cached, 2u);
  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(second.cells[i].outcome.total, first.cells[i].outcome.total);
    EXPECT_EQ(second.cells[i].outcome.detected_all, first.cells[i].outcome.detected_all);
    EXPECT_EQ(second.cells[i].outcome.detected_any, first.cells[i].outcome.detected_any);
  }
}

}  // namespace
}  // namespace twm::api
