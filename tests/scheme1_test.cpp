// Tests for the Scheme 1 baseline [12]: structure against the paper's
// Sec. 3 worked example (March C-, 4-bit words, T1'..T4') and the
// transparency invariant.
#include <gtest/gtest.h>

#include "bist/engine.h"
#include "core/scheme1.h"
#include "march/library.h"
#include "memsim/memory.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Scheme1, RejectsEmptyInput) {
  EXPECT_THROW(scheme1_transform(MarchTest{}, 4), std::invalid_argument);
}

TEST(Scheme1, MarchCMinusWidth4MatchesSec3Example) {
  const Scheme1Result r = scheme1_transform(march_by_name("March C-"), 4);

  // T1' (solid pass, init dropped): 9 ops; T2' and T3' (pattern passes,
  // init element becomes read+write): 11 ops each; T4' (restore): 2 ops.
  EXPECT_EQ(r.transparent.op_count(), 9u + 11u + 11u + 2u);
  EXPECT_TRUE(r.transparent.is_transparent());
  EXPECT_TRUE(r.transparent.every_element_begins_with_read());

  // Element layout: 5 (T1') + 6 (T2') + 6 (T3') + 1 (T4').
  ASSERT_EQ(r.transparent.elements.size(), 18u);

  // T2' begins with any(r a, w a^D1): the read expects the content left by
  // T1' (mask 0 — March C-'s last write is w0 -> w(a)).
  const MarchElement& t2_init = r.transparent.elements[5];
  ASSERT_EQ(t2_init.ops.size(), 2u);
  EXPECT_TRUE(t2_init.ops[0].is_read());
  EXPECT_FALSE(t2_init.ops[0].data.complement);
  EXPECT_TRUE(t2_init.ops[0].data.pattern.empty());
  EXPECT_TRUE(t2_init.ops[1].is_write());
  EXPECT_EQ(t2_init.ops[1].data.pattern.to_string(), "0101");

  // T4' reads the last pass's content (a^D2) and restores a.
  const MarchElement& t4 = r.transparent.elements.back();
  ASSERT_EQ(t4.ops.size(), 2u);
  EXPECT_EQ(t4.ops[0].data.pattern.to_string(), "0011");
  EXPECT_TRUE(t4.ops[1].is_write());
  EXPECT_TRUE(t4.ops[1].data.pattern.empty());
  EXPECT_FALSE(t4.ops[1].data.complement);
}

TEST(Scheme1, PredictionIsReadOnlyProjection) {
  const Scheme1Result r = scheme1_transform(march_by_name("March C-"), 4);
  EXPECT_EQ(r.prediction.write_count(), 0u);
  EXPECT_EQ(r.prediction.read_count(), r.transparent.read_count());
}

TEST(Scheme1, GrowsWithLog2B) {
  const MarchTest bit = march_by_name("March C-");
  std::size_t prev = 0;
  for (unsigned w : {4u, 8u, 16u, 32u}) {
    const auto r = scheme1_transform(bit, w);
    EXPECT_GT(r.transparent.op_count(), prev);
    prev = r.transparent.op_count();
  }
  // One more pattern pass (11 ops) per doubling for March C-.
  EXPECT_EQ(scheme1_transform(bit, 8).transparent.op_count(),
            scheme1_transform(bit, 4).transparent.op_count() + 11);
}

struct S1Case {
  std::string march;
  unsigned width;
};

class Scheme1Property : public ::testing::TestWithParam<S1Case> {};

TEST_P(Scheme1Property, TransparentAndFalseAlarmFree) {
  const auto& pc = GetParam();
  Rng rng(41);
  Memory mem(8, pc.width);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();

  const Scheme1Result r = scheme1_transform(march_by_name(pc.march), pc.width);
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(r.transparent, r.prediction, pc.width);
  EXPECT_FALSE(out.detected_exact);
  EXPECT_FALSE(out.detected_misr);
  EXPECT_TRUE(mem.equals(snapshot));
}

std::vector<S1Case> s1_cases() {
  std::vector<S1Case> cases;
  for (const auto& name : {"MATS", "MATS+", "March X", "March C-", "March U", "March B"})
    for (unsigned w : {2u, 4u, 8u, 16u}) cases.push_back({name, w});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Scheme1Property, ::testing::ValuesIn(s1_cases()),
                         [](const ::testing::TestParamInfo<S1Case>& info) {
                           std::string n =
                               info.param.march + "_w" + std::to_string(info.param.width);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(Scheme1, DetectsSaf) {
  Rng rng(43);
  Memory mem(8, 8);
  mem.fill_random(rng);
  mem.inject(Fault::saf({2, 5}, true));
  const Scheme1Result r = scheme1_transform(march_by_name("March C-"), 8);
  MarchRunner runner(mem);
  EXPECT_TRUE(runner.run_transparent_session(r.transparent, r.prediction, 8).detected_exact);
}

}  // namespace
}  // namespace twm
