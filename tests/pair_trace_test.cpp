// Reproduction of Figure 1 as executable checks: the two-cell state
// traversal of the transparent solid march (Fig. 1(a)) and the intra-word
// bit-pair detection conditions with/without ATMarch (Fig. 1(b)).
#include <gtest/gtest.h>

#include "analysis/pair_trace.h"
#include "bist/engine.h"
#include "core/nicolaidis.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/word_expand.h"
#include "util/rng.h"

namespace twm {
namespace {

// Fig. 1(a): on a two-cell memory, TSMarch(March C-) walks the pair through
// all four joint states in the paper's 18-step sequence.
TEST(PairTrace, Fig1aAllFourStatesIn18Steps) {
  Memory mem(2, 1);  // two cells, bit-oriented view
  Rng rng(2);
  mem.fill_random(rng);

  const MarchTest ts = nicolaidis_transparent(solid_march(march_by_name("March C-")));
  PairStateTrace trace(mem, {0, 0}, {1, 0});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  StreamRecorder sink;
  runner.run_test(ts, sink);

  EXPECT_EQ(trace.step_count(), 18u);  // 9 transparent ops x 2 cells
  EXPECT_EQ(trace.states_visited().size(), 4u);
}

TEST(PairTrace, Fig1aHoldsForAnyInitialContent) {
  const MarchTest ts = nicolaidis_transparent(solid_march(march_by_name("March C-")));
  for (const std::string init : {"00", "01", "10", "11"}) {
    Memory mem(2, 1);
    mem.load({BitVec::from_string(std::string(1, init[0])),
              BitVec::from_string(std::string(1, init[1]))});
    PairStateTrace trace(mem, {0, 0}, {1, 0});
    MarchRunner runner(mem);
    runner.set_observer(&trace);
    StreamRecorder sink;
    runner.run_test(ts, sink);
    EXPECT_EQ(trace.states_visited().size(), 4u) << init;
  }
}

// Every cell sees both transition directions while the other cell rests at
// both values — the inter-word CF excitation Fig. 1(a) encodes.
TEST(PairTrace, Fig1aEveryTransitionUnderEveryNeighbourState) {
  Memory mem(2, 1);
  const MarchTest ts = nicolaidis_transparent(solid_march(march_by_name("March C-")));
  PairStateTrace trace(mem, {0, 0}, {1, 0});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  StreamRecorder sink;
  runner.run_test(ts, sink);

  // seen[cell][direction(0=up)][neighbour value]
  bool seen[2][2][2] = {};
  for (const auto& ev : trace.events()) {
    if (ev.kind != OpKind::Write) continue;
    if (ev.before_i != ev.after_i)
      seen[0][ev.after_i ? 0 : 1][ev.after_j] = true;
    if (ev.before_j != ev.after_j)
      seen[1][ev.after_j ? 0 : 1][ev.after_i] = true;
  }
  for (int c = 0; c < 2; ++c)
    for (int d = 0; d < 2; ++d)
      for (int v = 0; v < 2; ++v) EXPECT_TRUE(seen[c][d][v]) << c << d << v;
}

// Fig. 1(b): within a word, the solid part alone can only move both bits
// together; ATMarch contributes the aggressor-flips/victim-holds events.
TEST(PairTrace, Fig1bTsmarchAloneMissesOppositePhaseEvents) {
  Memory mem(1, 4);
  const TwmResult r = twm_transform(march_by_name("March C-"), 4);

  PairStateTrace trace(mem, {0, 0}, {0, 1});  // adjacent bits: D1 separates them
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  StreamRecorder sink;
  runner.run_test(r.tsmarch, sink);

  const auto cond = analyze_intra_pair(trace.events());
  EXPECT_TRUE(cond.covered[0][1]) << "both-flip up present in solid part";
  EXPECT_TRUE(cond.covered[1][1]) << "both-flip down present in solid part";
  EXPECT_FALSE(cond.covered[0][0]) << "flip-and-hold impossible with solid data";
  EXPECT_FALSE(cond.covered[1][0]);
}

TEST(PairTrace, Fig1bTwmarchCoversAllConditions) {
  Memory mem(1, 4);
  Rng rng(13);
  mem.fill_random(rng);
  const TwmResult r = twm_transform(march_by_name("March C-"), 4);

  PairStateTrace trace(mem, {0, 0}, {0, 1});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  StreamRecorder sink;
  runner.run_test(r.twmarch, sink);

  const auto cond = analyze_intra_pair(trace.events());
  EXPECT_TRUE(cond.all());
}

// The checkerboard family separates every *unordered* bit pair: some Dk
// flips one bit of the pair while the other holds.  (Each pair is separated
// in one orientation only — e.g. D1 always flips the even bit of an
// adjacent pair — which is why a residue of intra-word CFst/CFid variants
// stays uncovered; see EXPERIMENTS.md.)
TEST(PairTrace, Fig1bEveryUnorderedPairGetsFlipHoldEvents) {
  const unsigned width = 8;
  const TwmResult r = twm_transform(march_by_name("March C-"), width);
  auto flip_hold_both_dirs = [&](unsigned a, unsigned b) {
    Memory mem(1, width);
    PairStateTrace trace(mem, {0, a}, {0, b});
    MarchRunner runner(mem);
    runner.set_observer(&trace);
    StreamRecorder sink;
    runner.run_test(r.twmarch, sink);
    return analyze_intra_pair(trace.events()).aggressor_flip_victim_holds_both_dirs();
  };
  for (unsigned i = 0; i < width; ++i)
    for (unsigned j = i + 1; j < width; ++j)
      EXPECT_TRUE(flip_hold_both_dirs(i, j) || flip_hold_both_dirs(j, i)) << i << "," << j;
}

TEST(PairTrace, EventRecordsDescribe) {
  Memory mem(2, 2);
  PairStateTrace trace(mem, {0, 0}, {1, 1});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  runner.run_direct(solid_march(march_by_name("MATS+")));
  ASSERT_FALSE(trace.events().empty());
  EXPECT_FALSE(trace.events().front().describe().empty());
}

}  // namespace
}  // namespace twm
