// Tests for the idle-time interference model: closed forms, Monte-Carlo
// agreement, and validation against the cycle-stepped TBIST controller.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/interference.h"
#include "bist/tbist.h"
#include "core/complexity.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Interference, NoTrafficMeansCertainCompletion) {
  InterferenceModel m{1000, 0.0};
  EXPECT_DOUBLE_EQ(m.completion_probability(), 1.0);
  EXPECT_DOUBLE_EQ(m.expected_attempts(), 1.0);
  EXPECT_DOUBLE_EQ(m.expected_total_steps(), 1000.0);
}

TEST(Interference, RejectsBadProbability) {
  InterferenceModel m{10, 1.5};
  EXPECT_THROW(m.completion_probability(), std::invalid_argument);
}

TEST(Interference, ClosedFormBasics) {
  InterferenceModel m{100, 0.01};
  EXPECT_NEAR(m.completion_probability(), std::pow(0.99, 100), 1e-12);
  EXPECT_NEAR(m.expected_attempts(), 1.0 / std::pow(0.99, 100), 1e-9);
  EXPECT_GT(m.expected_total_steps(), 100.0);
}

TEST(Interference, CompletionDropsExponentiallyWithLength) {
  const double p = 1e-3;
  double prev = 1.0;
  for (std::uint64_t len : {100u, 1000u, 5000u, 20000u}) {
    InterferenceModel m{len, p};
    const double q = m.completion_probability();
    EXPECT_LT(q, prev);
    prev = q;
  }
  // The paper's argument in one assert: halving the session length squares
  // the completion probability's root.
  InterferenceModel longm{20000, p}, shortm{10000, p};
  EXPECT_NEAR(longm.completion_probability(),
              shortm.completion_probability() * shortm.completion_probability(), 1e-9);
}

TEST(Interference, MonteCarloMatchesClosedForm) {
  InterferenceModel m{200, 0.005};  // q ~ 0.367
  Rng rng(42);
  const int trials = 3000;
  double attempts = 0, steps = 0;
  for (int t = 0; t < trials; ++t) {
    const auto sim = simulate_interference(m, rng);
    ASSERT_TRUE(sim.completed);
    attempts += static_cast<double>(sim.attempts);
    steps += static_cast<double>(sim.total_steps);
  }
  attempts /= trials;
  steps /= trials;
  EXPECT_NEAR(attempts, m.expected_attempts(), 0.15 * m.expected_attempts());
  EXPECT_NEAR(steps, m.expected_total_steps(), 0.15 * m.expected_total_steps());
}

TEST(Interference, SimulationRespectsMaxAttempts) {
  InterferenceModel m{1000000, 0.5};  // essentially never completes
  Rng rng(1);
  const auto sim = simulate_interference(m, rng, 3);
  EXPECT_FALSE(sim.completed);
  EXPECT_EQ(sim.attempts, 3u);
}

// The paper's comparison, restated in completion probabilities: at the same
// write rate, the proposed scheme's shorter sessions complete far more
// often than Scheme 1's and TOMT's.
TEST(Interference, ProposedSchemeCompletesMoreOften) {
  const auto& info = march_info("March C-");
  const std::uint64_t n = 256;
  const double p = 2e-5;
  const InterferenceModel prop{formula_proposed(info.ops, info.reads, 32).total() * n, p};
  const InterferenceModel s1{formula_scheme1(info.ops, info.reads, 32).total() * n, p};
  const InterferenceModel s2{formula_tomt(32).total() * n, p};
  EXPECT_GT(prop.completion_probability(), s1.completion_probability());
  EXPECT_GT(prop.completion_probability(), s2.completion_probability());
  EXPECT_LT(prop.expected_total_steps(), s1.expected_total_steps());
}

// Cross-validation against the actual controller: drive TBIST sessions
// under Bernoulli functional writes and compare the abort ratio with the
// model's prediction.
TEST(Interference, ControllerAbortRateMatchesModel) {
  const std::size_t words = 8;
  const unsigned width = 8;
  const TwmResult r = twm_transform(march_by_name("March C-"), width);
  Rng rng(7);
  Memory mem(words, width);
  mem.fill_random(rng);
  TbistController ctrl(mem, {r.twmarch, r.prediction, 0});

  const double p = 0.002;
  const std::uint64_t scale = 1ull << 32;
  const auto threshold = static_cast<std::uint64_t>(p * static_cast<double>(scale));
  const int sessions = 800;
  int completed = 0;
  for (int s = 0; s < sessions; ++s) {
    ctrl.start_session();
    while (ctrl.step()) {
      if ((rng.next_u64() & (scale - 1)) < threshold) {
        ctrl.functional_write(rng.next_below(words), rng.next_word(width));
        break;
      }
    }
    if (ctrl.state() == TbistController::State::Done) {
      ++completed;
      EXPECT_FALSE(ctrl.last_session_failed());
    }
  }

  const std::uint64_t session_len =
      (r.twmarch.op_count() + r.prediction.op_count()) * words + 1;
  const InterferenceModel model{session_len, p};
  const double expected = model.completion_probability();
  const double measured = static_cast<double>(completed) / sessions;
  EXPECT_NEAR(measured, expected, 0.08) << "expected " << expected;
}

}  // namespace
}  // namespace twm
