// Tests for the static march linter, cross-validated against the empirical
// coverage evaluator: the lint must never claim a capability the simulator
// refutes, and must grant it where the simulator proves it.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "analysis/lint.h"
#include "core/twm_ta.h"
#include "march/generator.h"
#include "march/library.h"
#include "march/parser.h"

namespace twm {
namespace {

TEST(Lint, RejectsTransparentInput) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 4);
  EXPECT_THROW(lint_march(r.twmarch), std::invalid_argument);
}

TEST(Lint, MarchCMinusHasEverything) {
  const MarchLint l = lint_march(march_by_name("March C-"));
  EXPECT_TRUE(l.initializes);
  EXPECT_TRUE(l.consistent);
  EXPECT_TRUE(l.detects_saf);
  EXPECT_TRUE(l.detects_tf);
  EXPECT_TRUE(l.detects_af);
  EXPECT_TRUE(l.full_inter_cf);
  EXPECT_NE(l.summary().find("CF:full"), std::string::npos);
}

TEST(Lint, MatsIsMinimal) {
  const MarchLint l = lint_march(march_by_name("MATS"));
  EXPECT_TRUE(l.detects_saf);
  EXPECT_FALSE(l.detects_tf);   // 1->0 never read-confirmed
  EXPECT_FALSE(l.detects_af);   // no down element
  EXPECT_FALSE(l.full_inter_cf);
}

TEST(Lint, MatsPlusGainsAf) {
  const MarchLint l = lint_march(march_by_name("MATS+"));
  EXPECT_TRUE(l.detects_saf);
  EXPECT_TRUE(l.detects_af);  // up(r0,w1); down(r1,w0)
  EXPECT_FALSE(l.full_inter_cf);
}

TEST(Lint, MarchXGainsTf) {
  const MarchLint l = lint_march(march_by_name("March X"));
  EXPECT_TRUE(l.detects_tf);  // trailing any(r0) confirms the 1->0 write
  EXPECT_TRUE(l.detects_af);
}

TEST(Lint, InconsistentMarchShortCircuits) {
  const MarchLint l = lint_march(parse_march("{ any(w0); up(r1) }"));
  EXPECT_FALSE(l.consistent);
  EXPECT_FALSE(l.detects_saf);
  EXPECT_NE(l.summary().find("INCONSISTENT"), std::string::npos);
}

// Catalog metadata cross-check: the linter agrees with the literature flags
// recorded in the catalog.
TEST(Lint, CatalogCfFlagsMatch) {
  for (const auto& info : march_catalog()) {
    const MarchLint l = lint_march(march_by_name(info.name));
    EXPECT_TRUE(l.consistent) << info.name;
    EXPECT_TRUE(l.detects_saf) << info.name;
    EXPECT_EQ(l.full_inter_cf, info.full_cf_coverage) << info.name;
  }
}

// Empirical cross-validation on the simulator: for every catalog march,
// lint.detects_saf/tf and full_inter_cf must match exhaustive bit-level
// campaigns (width-1 words make inter-word CFs the bit-oriented CFs).
TEST(Lint, EmpiricalCrossValidation) {
  const std::size_t kWords = 4;
  CoverageEvaluator eval(kWords, 1);
  const std::vector<std::uint64_t> seed{0};

  for (const auto& info : march_catalog()) {
    const MarchTest m = march_by_name(info.name);
    const MarchLint l = lint_march(m);

    const auto safs = all_safs(kWords, 1);
    const auto saf_cov = eval.evaluate(SchemeKind::WordOrientedMarch, m, safs, seed);
    EXPECT_EQ(l.detects_saf, saf_cov.detected_all == saf_cov.total) << info.name;

    const auto tfs = all_tfs(kWords, 1);
    const auto tf_cov = eval.evaluate(SchemeKind::WordOrientedMarch, m, tfs, seed);
    EXPECT_EQ(l.detects_tf, tf_cov.detected_all == tf_cov.total) << info.name;

    std::size_t cf_total = 0, cf_detected = 0;
    for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin}) {
      const auto cfs = all_cfs(kWords, 1, cls, CfScope::InterWord);
      const auto cov = eval.evaluate(SchemeKind::WordOrientedMarch, m, cfs, seed);
      cf_total += cov.total;
      cf_detected += cov.detected_all;
    }
    EXPECT_EQ(l.full_inter_cf, cf_detected == cf_total) << info.name << " " << cf_detected
                                                        << "/" << cf_total;
  }
}

// Fuzz: the linter never crashes on generated marches and the consistency
// predicate agrees with the generator's guarantee.
TEST(Lint, FuzzGeneratedMarches) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const MarchTest m = random_march(rng);
    const MarchLint l = lint_march(m);
    EXPECT_TRUE(l.consistent) << i;
    EXPECT_TRUE(l.initializes) << i;
  }
}

}  // namespace
}  // namespace twm
