// Tiled (array-of-lane-blocks) backend equivalence and the allocation-free
// repack contract.
//
// The TiledEngine is PackedEngineT over LaneTile<Inner, T>
// (memsim/lane_tile.h): 4096 or 32768 fault universes per machine pass,
// with the inner block width cpuid-selected at dispatch.  Everything the
// single-block widths promise must survive the tiling unchanged:
//
//   * VerdictMatrix byte-equality with the scalar backend, for all eight
//     schemes (the differential proof obligation of every new backend —
//     docs/ARCHITECTURE.md, "Authoring a backend"),
//   * partial-tile last batches (a fault list far smaller than one tile
//     must keep lane 0 golden and report no phantom universes),
//   * settle-exit + per-lane retirement inside a tile (repack == dense),
//   * the allocation-free round rebuild: adding seed rounds must not add
//     page allocations (CampaignStats::page_allocs stays flat).
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "core/simd.h"
#include "march/library.h"

namespace twm {
namespace {

constexpr std::size_t kWords = 4;
constexpr unsigned kWidth = 4;

std::vector<Fault> every_fault() {
  std::vector<Fault> faults;
  for (auto& f : all_safs(kWords, kWidth)) faults.push_back(f);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin})
    for (auto& f : all_cfs(kWords, kWidth, cls, CfScope::Both)) faults.push_back(f);
  for (auto& f : all_rets(kWords, kWidth, 1)) faults.push_back(f);
  for (auto& f : all_afs(kWords)) faults.push_back(f);
  return faults;
}

CoverageOptions opts(CoverageBackend backend, simd::Request simd,
                     ScheduleMode schedule = ScheduleMode::Repack) {
  CoverageOptions o;
  o.backend = backend;
  o.threads = 1;
  o.simd = simd;
  o.schedule = schedule;
  return o;
}

VerdictMatrix run_matrix(SchemeKind k, const MarchTest& march, const std::vector<Fault>& faults,
                         const std::vector<std::uint64_t>& seeds, const CoverageOptions& o) {
  return CampaignRunner(kWords, kWidth, o).matrix(k, march, faults, seeds);
}

class TiledEngineFixture : public ::testing::Test {
 protected:
  MarchTest march = march_by_name("March C-");
  std::vector<Fault> faults = every_fault();
  std::vector<std::uint64_t> seeds{0, 7};
};

// The headline contract of the PR: scalar, 64-lane, widest-supported
// single-block and tiled backends produce byte-identical verdict matrices
// for all eight schemes.  The whole fault list fits inside one partial
// 4096-lane tile, so the tile's used-mask path is exercised throughout.
TEST_F(TiledEngineFixture, MatrixByteIdenticalAcrossBackendsForEveryScheme) {
  std::vector<simd::Request> packed{simd::Request::W64};
  if (simd::supported(simd::best_width()) && simd::best_width() != simd::Width::W64)
    packed.push_back(simd::Request::Auto);  // widest single-block width
  packed.push_back(simd::Request::Tiled4096);
  for (SchemeKind k : kAllSchemes) {
    const VerdictMatrix scalar =
        run_matrix(k, march, faults, seeds, opts(CoverageBackend::Scalar, simd::Request::Auto));
    for (simd::Request r : packed) {
      const VerdictMatrix m =
          run_matrix(k, march, faults, seeds, opts(CoverageBackend::Packed, r));
      EXPECT_EQ(scalar.bits, m.bits) << to_string(k) << " at --simd " << simd::to_string(r);
    }
  }
}

// The large tile, spot-checked on the transparent schemes (32768-lane
// units are ~8x the per-pass work of the small tile; one scheme pair keeps
// the suite fast while still proving the second tile geometry).
TEST_F(TiledEngineFixture, LargeTileMatchesScalar) {
  for (SchemeKind k : {SchemeKind::ProposedExact, SchemeKind::ProposedMisr}) {
    const VerdictMatrix scalar =
        run_matrix(k, march, faults, seeds, opts(CoverageBackend::Scalar, simd::Request::Auto));
    const VerdictMatrix tiled = run_matrix(k, march, faults, seeds,
                                           opts(CoverageBackend::Packed, simd::Request::Tiled32768));
    EXPECT_EQ(scalar.bits, tiled.bits) << to_string(k);
  }
}

// A fault list of three faults in a 4095-slot tile: lane 0 stays golden,
// verdicts match, and the aggregate counts report no phantom universes.
TEST_F(TiledEngineFixture, PartialTileFarSmallerThanOneUnit) {
  const std::vector<Fault> few{faults[0], faults[40], faults[100]};
  const CoverageEvaluator eval{kWords, kWidth};
  const auto scalar = eval.per_fault(SchemeKind::ProposedExact, march, few, seeds);
  const auto tiled = eval.per_fault(SchemeKind::ProposedExact, march, few, seeds,
                                    opts(CoverageBackend::Packed, simd::Request::Tiled4096));
  EXPECT_EQ(scalar, tiled);
  const auto counts = eval.evaluate(SchemeKind::ProposedExact, march, few, seeds,
                                    opts(CoverageBackend::Packed, simd::Request::Tiled4096));
  EXPECT_EQ(counts.total, few.size());
  EXPECT_LE(counts.detected_any, few.size()) << "phantom universes in the partial tile";
}

// Settle-exit and per-lane fault retirement act inside a tile on the
// repack schedule; dense disables both.  Equality proves retirement never
// changes a verdict at tile widths (SessionBrake monotonicity).
TEST_F(TiledEngineFixture, RepackSettleExitMatchesDenseInsideTile) {
  const std::vector<std::uint64_t> many_seeds{0, 3, 7, 11};
  for (simd::Request r : {simd::Request::Tiled4096, simd::Request::Tiled32768}) {
    const VerdictMatrix dense = run_matrix(
        SchemeKind::ProposedExact, march, faults, many_seeds,
        opts(CoverageBackend::Packed, r, ScheduleMode::Dense));
    const VerdictMatrix repack = run_matrix(
        SchemeKind::ProposedExact, march, faults, many_seeds,
        opts(CoverageBackend::Packed, r, ScheduleMode::Repack));
    EXPECT_EQ(dense.bits, repack.bits) << simd::to_string(r);
  }
}

// The allocation-free round rebuild: worker memories persist across seed
// rounds, so a campaign with three times the rounds performs exactly the
// same number of fresh page allocations (the free-list absorbs every
// refill).  This pins the CampaignStats::page_allocs contract the repack
// scheduler documents.
TEST_F(TiledEngineFixture, RepackRoundRebuildAllocatesNoNewPages) {
  const CoverageEvaluator eval{kWords, kWidth};
  for (simd::Request r : {simd::Request::W64, simd::Request::Tiled4096}) {
    CampaignStats short_run, long_run;
    const std::vector<std::uint64_t> two{0, 7};
    const std::vector<std::uint64_t> six{0, 7, 11, 13, 17, 19};
    CampaignRunner(kWords, kWidth, opts(CoverageBackend::Packed, r))
        .per_fault(SchemeKind::ProposedExact, march, faults, two, &short_run);
    CampaignRunner(kWords, kWidth, opts(CoverageBackend::Packed, r))
        .per_fault(SchemeKind::ProposedExact, march, faults, six, &long_run);
    EXPECT_GT(short_run.page_allocs.load(), 0u) << simd::to_string(r);
    EXPECT_EQ(short_run.page_allocs.load(), long_run.page_allocs.load())
        << "extra rounds allocated pages at --simd " << simd::to_string(r);
  }
}

}  // namespace
}  // namespace twm
