// Property-based fuzzing of the whole transformation pipeline with randomly
// generated (but always valid) bit-oriented march tests.
#include <gtest/gtest.h>

#include "bist/engine.h"
#include "core/nicolaidis.h"
#include "core/twm_ta.h"
#include "march/generator.h"
#include "march/library.h"
#include "march/parser.h"
#include "memsim/memory.h"
#include "util/backgrounds.h"

namespace twm {
namespace {

TEST(Generator, RejectsContradictoryOptions) {
  Rng rng(1);
  GeneratorOptions bad;
  bad.min_elements = 1;
  EXPECT_THROW(random_march(rng, bad), std::invalid_argument);
  bad = {};
  bad.max_elements = 1;
  EXPECT_THROW(random_march(rng, bad), std::invalid_argument);
  bad = {};
  bad.write_percent = 101;
  EXPECT_THROW(random_march(rng, bad), std::invalid_argument);
}

TEST(Generator, ProducesConsistentMarches) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const MarchTest t = random_march(rng);
    EXPECT_TRUE(is_consistent_bit_march(t)) << "iteration " << i;
    EXPECT_GE(t.elements.size(), 2u);
    EXPECT_TRUE(t.elements.front().all_writes());
  }
}

TEST(Generator, ConsistencyPredicateCatchesStaleReads) {
  // w0 then r1 is inconsistent.
  EXPECT_FALSE(is_consistent_bit_march(parse_march("{ any(w0); up(r1) }")));
  EXPECT_TRUE(is_consistent_bit_march(parse_march("{ any(w0); up(r0,w1,r1) }")));
  EXPECT_FALSE(is_consistent_bit_march(parse_march("{ any(r0); up(w1) }")));  // no init write
  // The whole catalog is consistent.
  for (const auto& name : march_names())
    EXPECT_TRUE(is_consistent_bit_march(march_by_name(name))) << name;
}

// The pipeline invariants must hold on arbitrary valid inputs, not just the
// catalog: transparency, read-first elements, prediction consistency, and
// content preservation.
TEST(Generator, FuzzTwmPipeline) {
  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    const MarchTest bit = random_march(rng);
    const unsigned width = 1u << (1 + rng.next_below(5));  // 2..32

    TwmResult r;
    try {
      r = twm_transform(bit, width);
    } catch (const std::invalid_argument&) {
      // Only legal rejection: a march that is all init (no activity).
      ASSERT_EQ(bit.elements.size(), 1u);
      continue;
    }

    EXPECT_TRUE(r.twmarch.is_transparent()) << i;
    EXPECT_TRUE(r.twmarch.every_element_begins_with_read()) << i;
    EXPECT_EQ(r.prediction.write_count(), 0u) << i;

    Rng content_rng(1000 + i);
    Memory mem(6, width);
    mem.fill_random(content_rng);
    const auto snapshot = mem.snapshot();
    MarchRunner runner(mem);
    const auto out = runner.run_transparent_session(r.twmarch, r.prediction, width);
    EXPECT_FALSE(out.detected_exact) << i;
    EXPECT_TRUE(mem.equals(snapshot)) << i;
  }
}

// Complexity of the generated TWMarch stays within the paper's closed form
// plus the small additive slack the construction can introduce (appended
// read-back, ATMarch closing ops).
TEST(Generator, FuzzComplexityEnvelope) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const MarchTest bit = random_march(rng);
    if (bit.elements.size() < 2) continue;
    const unsigned width = 16;
    TwmResult r;
    try {
      r = twm_transform(bit, width);
    } catch (const std::invalid_argument&) {
      continue;
    }
    const std::size_t s = bit.op_count();
    const std::size_t formula = s + 5 * log2_exact(width);
    // Construction slack above the closed form: +1 per non-init element
    // whose first op is a Write (prepended read), +1 appended read-back,
    // +1 ATMarch closing write; -1 when the init element is dropped.
    std::size_t write_first = 0;
    for (std::size_t e = 1; e < bit.elements.size(); ++e)
      write_first += !bit.elements[e].begins_with_read();
    EXPECT_LE(r.twmarch.op_count(), formula + write_first + 2) << i;
    EXPECT_GE(r.twmarch.op_count() + 1, formula) << i;
  }
}

// Nicolaidis transform on random marches: still transparent & restoring.
TEST(Generator, FuzzNicolaidis) {
  Rng rng(23);
  for (int i = 0; i < 120; ++i) {
    const MarchTest bit = random_march(rng);
    MarchTest t;
    try {
      t = nicolaidis_transparent(bit);
    } catch (const std::invalid_argument&) {
      continue;
    }
    EXPECT_TRUE(t.is_transparent());
    EXPECT_TRUE(t.every_element_begins_with_read());

    Memory mem(5, 8);
    Rng content_rng(2000 + i);
    mem.fill_random(content_rng);
    const auto snapshot = mem.snapshot();
    MarchRunner runner(mem);
    StreamRecorder sink;
    runner.run_test(t, sink);
    EXPECT_TRUE(mem.equals(snapshot)) << i;
  }
}

// ---- search operators (ISSUE 9) -----------------------------------------

// Every mutation operator applied to any random_march output must yield a
// march that still satisfies is_consistent_bit_march — the search space is
// closed under mutation by construction (repair, not rejection).
TEST(Generator, FuzzMutationsPreserveConsistency) {
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    const MarchTest parent = random_march(rng);
    for (MarchMutation m : kAllMarchMutations) {
      const MarchTest child = mutate_march(rng, parent, m);
      EXPECT_TRUE(is_consistent_bit_march(child)) << "iteration " << i << ", op "
                                                  << to_string(m);
      EXPECT_GE(child.elements.size(), 2u) << "iteration " << i << ", op " << to_string(m);
      EXPECT_TRUE(is_consistent_bit_march(parent)) << "parent mutated in place, op "
                                                   << to_string(m);
    }
  }
}

TEST(Generator, FuzzSplicePreservesConsistency) {
  Rng rng(37);
  for (int i = 0; i < 300; ++i) {
    const MarchTest a = random_march(rng);
    const MarchTest b = random_march(rng);
    const MarchTest child = splice_marches(rng, a, b);
    EXPECT_TRUE(is_consistent_bit_march(child)) << "iteration " << i;
    EXPECT_GE(child.elements.size(), 2u) << "iteration " << i;
  }
}

// The catalog is part of the seeded population, so the operators must keep
// its entries consistent too (March G brings del elements along).
TEST(Generator, MutationsPreserveCatalogConsistency) {
  Rng rng(41);
  for (const auto& name : march_names()) {
    const MarchTest parent = march_by_name(name);
    for (MarchMutation m : kAllMarchMutations)
      EXPECT_TRUE(is_consistent_bit_march(mutate_march(rng, parent, m)))
          << name << ", op " << to_string(m);
  }
}

TEST(Generator, RepairFixesArbitraryDamage) {
  // Stale read, no init write, empty element in the middle.
  MarchTest t = parse_march("{ any(r1); up(r0,w1); down(r0) }");
  ASSERT_FALSE(is_consistent_bit_march(t));
  t.elements.insert(t.elements.begin() + 1, MarchElement{});
  repair_bit_march(t);
  EXPECT_TRUE(is_consistent_bit_march(t));
  EXPECT_GE(t.elements.size(), 2u);
  EXPECT_TRUE(t.elements.front().ops.front().is_write());
}

TEST(Generator, MutationSpellingsRoundTrip) {
  for (MarchMutation m : kAllMarchMutations) {
    const auto parsed = parse_mutation(to_string(m));
    ASSERT_TRUE(parsed.has_value()) << to_string(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_mutation("splice").has_value());  // crossover, not a mutation
  EXPECT_FALSE(parse_mutation("nope").has_value());
}

}  // namespace
}  // namespace twm
