// Tests for the microcode compiler and the register-level datapath,
// including cycle-level equivalence against the behavioural MarchRunner —
// the RTL-vs-reference check a hardware team would sign off on.
#include <gtest/gtest.h>

#include "bist/datapath.h"
#include "bist/engine.h"
#include "core/scheme1.h"
#include "core/twm_ta.h"
#include "march/generator.h"
#include "march/library.h"
#include "util/backgrounds.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Microcode, RejectsNonTransparentOrEmpty) {
  EXPECT_THROW(compile_program(march_by_name("March C-"), 8), std::invalid_argument);
  EXPECT_THROW(compile_program(MarchTest{}, 8), std::invalid_argument);
}

TEST(Microcode, OpRomMatchesTestLength) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  const BistProgram p = compile_program(r.twmarch, 8);
  EXPECT_EQ(p.op_rom_size(), r.twmarch.op_count());
  EXPECT_EQ(p.elements.size(), r.twmarch.elements.size());
}

TEST(Microcode, MaskRomIsDeduplicated) {
  // TWMarch needs exactly 2 + log2(B) distinct masks: 0, ~0, D1..Dlog2B.
  for (unsigned w : {4u, 8u, 32u, 128u}) {
    const TwmResult r = twm_transform(march_by_name("March C-"), w);
    const BistProgram p = compile_program(r.twmarch, w);
    EXPECT_EQ(p.mask_rom_size(), 2 + log2_exact(w)) << "width " << w;
  }
}

TEST(Microcode, Scheme1NeedsMoreMasks) {
  // The per-background construction references Dk and ~Dk masks: its mask
  // ROM is about twice the proposed scheme's.
  const unsigned w = 32;
  const TwmResult twm = twm_transform(march_by_name("March C-"), w);
  const auto s1 = scheme1_transform(march_by_name("March C-"), w);
  const std::size_t twm_masks = compile_program(twm.twmarch, w).mask_rom_size();
  const std::size_t s1_masks = compile_program(s1.transparent, w).mask_rom_size();
  EXPECT_GT(s1_masks, twm_masks);
}

TEST(Microcode, ElementBoundariesMarked) {
  const TwmResult r = twm_transform(march_by_name("March U"), 8);
  const BistProgram p = compile_program(r.twmarch, 8);
  for (const auto& e : p.elements) {
    EXPECT_TRUE(p.ops[e.first_op].element_start);
    EXPECT_FALSE(p.ops[e.first_op].write) << "element must start with a Read";
    EXPECT_TRUE(p.ops[e.first_op + e.op_count - 1].last_in_element);
  }
}

TEST(Microcode, PredictionProgramDropsWrites) {
  const TwmResult r = twm_transform(march_by_name("March U"), 8);
  const BistProgram p = compile_program(r.twmarch, 8);
  const BistProgram pred = prediction_program(p);
  EXPECT_EQ(pred.op_rom_size(), r.prediction.op_count());
  for (const auto& u : pred.ops) EXPECT_FALSE(u.write);
  EXPECT_EQ(pred.masks.size(), p.masks.size());  // shared mask ROM
}

TEST(Datapath, WidthMismatchRejected) {
  Memory mem(4, 8);
  const TwmResult r = twm_transform(march_by_name("March C-"), 16);
  EXPECT_THROW(BistDatapath(mem, compile_program(r.twmarch, 16)), std::invalid_argument);
}

TEST(Datapath, CycleCountIsSessionCost) {
  Rng rng(1);
  Memory mem(16, 8);
  mem.fill_random(rng);
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  BistDatapath dp(mem, compile_program(r.twmarch, 8));
  EXPECT_FALSE(dp.run_session());
  const std::uint64_t expected =
      (r.twmarch.op_count() + r.prediction.op_count()) * mem.num_words() + 1;
  EXPECT_EQ(dp.cycles(), expected);
}

// The sign-off check: for every catalogued march and several widths, the
// datapath produces the same signatures as the behavioural engine, keeps
// the memory transparent, and yields the same verdict with and without an
// injected fault.
struct DpCase {
  std::string march;
  unsigned width;
};

class DatapathEquivalence : public ::testing::TestWithParam<DpCase> {};

TEST_P(DatapathEquivalence, MatchesBehaviouralEngine) {
  const auto& pc = GetParam();
  const TwmResult r = twm_transform(march_by_name(pc.march), pc.width);
  const BistProgram prog = compile_program(r.twmarch, pc.width);

  for (bool faulty : {false, true}) {
    Rng rng(100 + pc.width);
    Memory mem_dp(8, pc.width);
    mem_dp.fill_random(rng);
    Memory mem_ref(8, pc.width);
    mem_ref.load(mem_dp.snapshot());
    if (faulty) {
      const Fault f = Fault::tf({3, pc.width / 2}, Transition::Down);
      mem_dp.inject(f);
      mem_ref.inject(f);
    }
    const auto snapshot = mem_dp.snapshot();

    BistDatapath dp(mem_dp, prog);
    const bool dp_detected = dp.run_session();

    MarchRunner runner(mem_ref);
    const auto ref = runner.run_transparent_session(r.twmarch, r.prediction, pc.width);

    EXPECT_EQ(dp_detected, ref.detected_misr) << (faulty ? "faulty" : "clean");
    EXPECT_EQ(dp.predicted_signature(), ref.signature_predicted);
    EXPECT_EQ(dp.observed_signature(), ref.signature_observed);
    EXPECT_EQ(mem_dp.snapshot(), mem_ref.snapshot());
    if (!faulty) {
      EXPECT_EQ(mem_dp.snapshot(), snapshot);
    }
  }
}

std::vector<DpCase> dp_cases() {
  std::vector<DpCase> cases;
  for (const auto& info : march_catalog())
    for (unsigned w : {2u, 8u, 32u}) cases.push_back({info.name, w});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Catalog, DatapathEquivalence, ::testing::ValuesIn(dp_cases()),
                         [](const ::testing::TestParamInfo<DpCase>& info) {
                           std::string n =
                               info.param.march + "_w" + std::to_string(info.param.width);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// Fuzz equivalence on generated marches.
TEST(Datapath, FuzzEquivalence) {
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const MarchTest bit = random_march(rng);
    const unsigned width = 1u << (1 + rng.next_below(4));
    const TwmResult r = twm_transform(bit, width);
    const BistProgram prog = compile_program(r.twmarch, width);

    Rng content(500 + i);
    Memory mem_dp(5, width);
    mem_dp.fill_random(content);
    Memory mem_ref(5, width);
    mem_ref.load(mem_dp.snapshot());

    BistDatapath dp(mem_dp, prog);
    const bool detected = dp.run_session();

    MarchRunner runner(mem_ref);
    const auto ref = runner.run_transparent_session(r.twmarch, r.prediction, width);
    EXPECT_EQ(detected, ref.detected_misr) << i;
    EXPECT_FALSE(detected) << i;
    EXPECT_EQ(mem_dp.snapshot(), mem_ref.snapshot()) << i;
  }
}

}  // namespace
}  // namespace twm
