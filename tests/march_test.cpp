// Tests for the march representation: parser, printer, catalog, and the
// conventional word-oriented expansion.
#include <gtest/gtest.h>

#include "march/library.h"
#include "march/parser.h"
#include "march/printer.h"
#include "march/word_expand.h"
#include "util/backgrounds.h"

namespace twm {
namespace {

TEST(Parser, ParsesMarchCMinus) {
  const MarchTest t =
      parse_march("{ any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0) }",
                  "March C-");
  ASSERT_EQ(t.elements.size(), 6u);
  EXPECT_EQ(t.op_count(), 10u);
  EXPECT_EQ(t.read_count(), 5u);
  EXPECT_EQ(t.write_count(), 5u);
  EXPECT_EQ(t.elements[0].order, AddrOrder::Any);
  EXPECT_EQ(t.elements[1].order, AddrOrder::Up);
  EXPECT_EQ(t.elements[3].order, AddrOrder::Down);
  EXPECT_TRUE(t.elements[1].ops[0].is_read());
  EXPECT_FALSE(t.elements[1].ops[0].data.complement);
  EXPECT_TRUE(t.elements[1].ops[1].is_write());
  EXPECT_TRUE(t.elements[1].ops[1].data.complement);
}

TEST(Parser, WhitespaceInsensitive) {
  const MarchTest a = parse_march("{any(w0);up(r0,w1)}");
  const MarchTest b = parse_march("  {  any ( w0 ) ;  up ( r0 , w1 )  }  ");
  EXPECT_EQ(to_string(a), to_string(b));
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_march(""), std::invalid_argument);
  EXPECT_THROW(parse_march("{}"), std::invalid_argument);
  EXPECT_THROW(parse_march("{ sideways(r0) }"), std::invalid_argument);
  EXPECT_THROW(parse_march("{ up(r2) }"), std::invalid_argument);
  EXPECT_THROW(parse_march("{ up(x0) }"), std::invalid_argument);
  EXPECT_THROW(parse_march("{ up(r0) } trailing"), std::invalid_argument);
  EXPECT_THROW(parse_march("{ up(r0,) }"), std::invalid_argument);
  EXPECT_THROW(parse_march("{ up r0 }"), std::invalid_argument);
}

TEST(Printer, RendersConventionalNotation) {
  const MarchTest t = parse_march("{ any(w0); up(r0,w1); any(r1) }", "X");
  EXPECT_EQ(to_string(t), "X: { any(w(0)); up(r(0),w(1)); any(r(1)) }");
}

TEST(Printer, RoundTripThroughParser) {
  // The parser accepts the printer's parenthesized form, so printing and
  // re-parsing is the identity for every plain bit-oriented march.
  for (const auto& info : march_catalog()) {
    const MarchTest t = march_by_name(info.name);
    std::string printed = to_string(t);
    printed = printed.substr(printed.find('{'));
    const MarchTest back = parse_march(printed, info.name);
    EXPECT_EQ(to_string(back), to_string(t)) << info.name;
    EXPECT_EQ(back.op_count(), t.op_count()) << info.name;
    ASSERT_EQ(back.elements.size(), t.elements.size()) << info.name;
    for (std::size_t e = 0; e < t.elements.size(); ++e) {
      EXPECT_EQ(back.elements[e].order, t.elements[e].order);
      EXPECT_EQ(back.elements[e].pause_before, t.elements[e].pause_before);
    }
  }
}

TEST(Parser, AcceptsBothOpForms) {
  const MarchTest a = parse_march("{ any(w0); up(r0,w1) }");
  const MarchTest b = parse_march("{ any(w(0)); up(r(0),w(1)) }");
  EXPECT_EQ(to_string(a), to_string(b));
  EXPECT_THROW(parse_march("{ any(w(0) }"), std::invalid_argument);   // unclosed
  EXPECT_THROW(parse_march("{ any(w(2)) }"), std::invalid_argument);  // bad digit
}

TEST(Printer, ParserPrinterStable) {
  for (const auto& info : march_catalog()) {
    const MarchTest t = parse_march(info.spec, info.name);
    const std::string printed = to_string(t);
    EXPECT_NE(printed.find("{"), std::string::npos) << info.name;
    EXPECT_EQ(t.op_count(), info.ops) << info.name;
  }
}

// --- catalog metadata matches the parsed tests -------------------------

class CatalogEntry : public ::testing::TestWithParam<MarchInfo> {};

TEST_P(CatalogEntry, CountsMatchSpec) {
  const MarchInfo& info = GetParam();
  const MarchTest t = march_by_name(info.name);
  EXPECT_EQ(t.op_count(), info.ops);
  EXPECT_EQ(t.read_count(), info.reads);
  EXPECT_FALSE(t.is_transparent());
}

TEST_P(CatalogEntry, StartsWithInitElement) {
  const MarchTest t = march_by_name(GetParam().name);
  EXPECT_TRUE(t.elements.front().all_writes());
}

TEST_P(CatalogEntry, FinalWriteSpecIsSolid) {
  const auto spec = march_by_name(GetParam().name).final_write_spec();
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->relative);
  EXPECT_TRUE(spec->pattern.empty());
}

INSTANTIATE_TEST_SUITE_P(AllMarches, CatalogEntry, ::testing::ValuesIn(march_catalog()),
                         [](const ::testing::TestParamInfo<MarchInfo>& info) {
                           std::string n = info.param.name;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(march_by_name("March Z"), std::out_of_range);
  EXPECT_THROW(march_info("nope"), std::out_of_range);
}

TEST(Catalog, KnownSQValues) {
  // The paper's complexity discussion uses March C- (S=10, Q=5) and
  // March U (S=13, Q=6).
  EXPECT_EQ(march_info("March C-").ops, 10u);
  EXPECT_EQ(march_info("March C-").reads, 5u);
  EXPECT_EQ(march_info("March U").ops, 13u);
  EXPECT_EQ(march_info("March U").reads, 6u);
}

TEST(Catalog, NamesListedOnce) {
  auto names = march_names();
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
  EXPECT_GE(names.size(), 12u);
}

// --- word-oriented expansion --------------------------------------------

TEST(WordExpand, SolidMarchKeepsStructure) {
  const MarchTest bit = march_by_name("March U");
  const MarchTest s = solid_march(bit);
  EXPECT_EQ(s.name, "SMarch U");
  EXPECT_EQ(s.op_count(), bit.op_count());
  EXPECT_EQ(s.elements.size(), bit.elements.size());
}

TEST(WordExpand, SolidMarchRejectsNonPlainInput) {
  MarchTest t = march_by_name("MATS");
  t.elements[0].ops[0].data.relative = true;
  EXPECT_THROW(solid_march(t), std::invalid_argument);
}

TEST(WordExpand, WordOrientedMarchRunsOncePerBackground) {
  const MarchTest bit = march_by_name("March C-");
  for (unsigned w : {4u, 8u, 16u}) {
    const MarchTest wo = word_oriented_march(bit, w);
    const std::size_t passes = 1 + log2_exact(w);
    EXPECT_EQ(wo.elements.size(), bit.elements.size() * passes);
    EXPECT_EQ(wo.op_count(), bit.op_count() * passes);
  }
}

TEST(WordExpand, WordOrientedPatternsMatchBackgrounds) {
  const MarchTest wo = word_oriented_march(march_by_name("MATS+"), 4);
  // Pass 0 must be pattern-free (solid); pass 1 carries D1 = 0101.
  const auto& pass0_op = wo.elements[0].ops[0];
  EXPECT_TRUE(pass0_op.data.pattern.empty());
  const auto& pass1_op = wo.elements[3].ops[0];
  ASSERT_FALSE(pass1_op.data.pattern.empty());
  EXPECT_EQ(pass1_op.data.pattern.to_string(), "0101");
  EXPECT_EQ(pass1_op.data.label, "D1");
}

TEST(WordExpand, AmarchShape) {
  const MarchTest a = nontransparent_amarch(8, false);
  // log2(8) = 3 sweep elements of 5 ops + closing read.
  ASSERT_EQ(a.elements.size(), 4u);
  EXPECT_EQ(a.op_count(), 16u);
  for (int k = 0; k < 3; ++k) {
    const auto& e = a.elements[k];
    ASSERT_EQ(e.ops.size(), 5u);
    EXPECT_TRUE(e.ops[0].is_read());
    EXPECT_TRUE(e.ops[1].is_write());
    EXPECT_FALSE(e.ops[1].data.pattern.empty());
    EXPECT_TRUE(e.ops[3].is_write());
    EXPECT_TRUE(e.ops[3].data.pattern.empty());
  }
  EXPECT_EQ(a.elements[3].ops.size(), 1u);
}

TEST(WordExpand, AmarchInvertedBase) {
  const MarchTest a = nontransparent_amarch(4, true);
  EXPECT_TRUE(a.elements[0].ops[0].data.complement);
  // Expected read value of the flipped write: ~a ^ D1 -> complement set and
  // pattern present.
  EXPECT_TRUE(a.elements[0].ops[2].data.complement);
  EXPECT_FALSE(a.elements[0].ops[2].data.pattern.empty());
}

TEST(MarchTest, LastOpAndFinalWriteSpec) {
  const MarchTest t = march_by_name("March U");
  ASSERT_NE(t.last_op(), nullptr);
  EXPECT_TRUE(t.last_op()->is_write());  // March U ends w0
  const auto spec = t.final_write_spec();
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->complement);  // final write is w0

  const MarchTest c = march_by_name("March C-");
  ASSERT_NE(c.last_op(), nullptr);
  EXPECT_TRUE(c.last_op()->is_read());  // March C- ends r0
}

TEST(MarchTest, EveryElementBeginsWithReadPredicate) {
  MarchTest t = parse_march("{ up(r0,w1); down(r1) }");
  EXPECT_TRUE(t.every_element_begins_with_read());
  t = parse_march("{ up(w1); down(r1) }");
  EXPECT_FALSE(t.every_element_begins_with_read());
}

}  // namespace
}  // namespace twm
