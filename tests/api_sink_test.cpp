// Tests for the streaming ResultSink surface: per-unit records arrive
// during the run, cooperative cancellation truncates the stream to a
// prefix, the shipped sinks emit well-formed output, and spec-driven
// campaigns are verdict-identical to the legacy CoverageEvaluator facade.
#include <gtest/gtest.h>

#include <clocale>
#include <sstream>

#include "analysis/coverage.h"
#include "analysis/report.h"
#include "api/json.h"
#include "api/runner.h"
#include "api/sink.h"
#include "march/library.h"

namespace twm::api {
namespace {

// Scalar + 1 thread: units are claimed sequentially in fault order, so the
// record stream is deterministic and cancellation cuts an exact prefix.
CampaignSpec sequential_spec() {
  CampaignSpec s;
  s.name = "sink-test";
  s.words = 2;
  s.width = 2;
  s.march = "March C-";
  s.schemes = {SchemeKind::ProposedExact};
  s.classes = {{ClassKind::Saf, CfScope::Both}};  // 2*2*2 = 8 faults
  s.seeds = {0, 1};
  s.backend = CoverageBackend::Scalar;
  s.threads = 1;
  return s;
}

TEST(ResultSinkTest, StreamsOneUnitRecordPerFault) {
  CollectingSink sink;
  const CampaignSummary summary = run_campaign(sequential_spec(), &sink);
  EXPECT_EQ(sink.begins, 1u);
  EXPECT_EQ(sink.ends, 1u);
  ASSERT_EQ(sink.units.size(), 8u);
  EXPECT_FALSE(summary.cancelled);
  EXPECT_EQ(summary.units_emitted, 8u);
  ASSERT_EQ(summary.cells.size(), 1u);
  EXPECT_EQ(summary.cells[0].outcome.total, 8u);
  // Scalar single-thread: records arrive in fault order.
  for (std::size_t i = 0; i < sink.units.size(); ++i)
    EXPECT_EQ(sink.units[i].fault_index, i);
  // Units agree with the aggregate.
  std::size_t all = 0;
  for (const auto& u : sink.units) all += u.detected_all;
  EXPECT_EQ(all, summary.cells[0].outcome.detected_all);
}

TEST(ResultSinkTest, CancellationYieldsExactPrefixOfFullStream) {
  // Full stream first.
  CollectingSink full;
  run_campaign(sequential_spec(), &full);
  ASSERT_EQ(full.units.size(), 8u);

  // Cancel after 3 unit records: the engine stops claiming units, so the
  // observed stream is exactly the first 3 records of the full stream.
  CollectingSink cancelling(/*cancel_after_units=*/3);
  const CampaignSummary summary = run_campaign(sequential_spec(), &cancelling);
  EXPECT_TRUE(summary.cancelled);
  ASSERT_EQ(cancelling.units.size(), 3u);
  for (std::size_t i = 0; i < cancelling.units.size(); ++i) {
    EXPECT_EQ(cancelling.units[i].fault_index, full.units[i].fault_index);
    EXPECT_EQ(cancelling.units[i].detected_all, full.units[i].detected_all);
    EXPECT_EQ(cancelling.units[i].detected_any, full.units[i].detected_any);
  }
  // The aborted cell is not reported as an aggregate; end still fires.
  EXPECT_TRUE(summary.cells.empty());
  EXPECT_EQ(cancelling.ends, 1u);
}

TEST(ResultSinkTest, CancellationStopsMultiThreadedPackedRuns) {
  CampaignSpec spec = sequential_spec();
  spec.backend = CoverageBackend::Packed;
  spec.threads = 4;
  spec.words = 8;
  spec.width = 8;  // 8*8*2 = 128 faults -> several packed units at 64 lanes
  spec.simd = simd::Request::W64;
  CollectingSink cancelling(/*cancel_after_units=*/1);
  const CampaignSummary summary = run_campaign(spec, &cancelling);
  EXPECT_TRUE(summary.cancelled);
  // In-flight units may still settle after the flag flips (cooperative
  // cancellation).  The cell aggregate is reported iff every unit of the
  // cell streamed — a truncated cell must never appear complete.
  EXPECT_GE(cancelling.units.size(), 1u);
  EXPECT_LE(cancelling.units.size(), 128u);
  if (cancelling.units.size() == 128u) {
    ASSERT_EQ(summary.cells.size(), 1u);
    EXPECT_EQ(summary.cells[0].outcome.total, 128u);
  } else {
    EXPECT_TRUE(summary.cells.empty());
  }
  EXPECT_EQ(cancelling.ends, 1u);
}

TEST(ResultSinkTest, CancellationAtCellBoundaryKeepsTheCompletedCell) {
  // The flag flips while consuming the LAST unit record of the cell: all
  // work ran, so the aggregate must survive alongside cancelled=true.
  CollectingSink cancelling(/*cancel_after_units=*/8);
  const CampaignSummary summary = run_campaign(sequential_spec(), &cancelling);
  EXPECT_TRUE(summary.cancelled);
  EXPECT_EQ(cancelling.units.size(), 8u);
  ASSERT_EQ(summary.cells.size(), 1u);
  EXPECT_EQ(summary.cells[0].outcome.total, 8u);
}

TEST(ResultSinkTest, SeedRecordsAreOptInAndComplete) {
  CollectingSink sink(/*cancel_after_units=*/0, /*seed_records=*/true);
  run_campaign(sequential_spec(), &sink);
  EXPECT_EQ(sink.seeds.size(), 8u * 2u);
  for (const SeedRecord& r : sink.seeds) {
    EXPECT_TRUE(r.seed == 0 || r.seed == 1);
    EXPECT_TRUE(r.detected);
  }
  // Off by default.
  CollectingSink quiet;
  run_campaign(sequential_spec(), &quiet);
  EXPECT_TRUE(quiet.seeds.empty());
}

TEST(ResultSinkTest, SeedRecordsSuppressTheEarlyExit) {
  // The symmetric scheme misses many TFs, so per-unit verdicts settle
  // before the last seed; a seed-record consumer must still receive the
  // COMPLETE (fault, seed) stream — requesting it disables the early exit
  // exactly like the matrix path does.
  CampaignSpec spec = sequential_spec();
  spec.words = 2;
  spec.width = 4;  // 2*4*2 = 16 TFs
  spec.schemes = {SchemeKind::ProposedSymmetricXor};
  spec.classes = {{ClassKind::Tf, CfScope::Both}};
  spec.seeds = {0, 1, 2};
  CollectingSink sink(/*cancel_after_units=*/0, /*seed_records=*/true);
  const CampaignSummary summary = run_campaign(spec, &sink);
  ASSERT_EQ(summary.cells.size(), 1u);
  // Not a degenerate campaign: some faults escape under some content.
  EXPECT_LT(summary.cells[0].outcome.detected_all, summary.cells[0].outcome.total);
  EXPECT_EQ(sink.seeds.size(), 16u * 3u);
}

TEST(ResultSinkTest, JsonLinesStreamIsWellFormed) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  run_campaign(sequential_spec(), &sink);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(lines, line)) {
    const JsonValue v = json_parse(line);  // every line parses standalone
    ASSERT_TRUE(v.is_object());
    types.push_back(v.find("type")->as_string());
  }
  ASSERT_EQ(types.size(), 1u + 8u + 1u);
  EXPECT_EQ(types.front(), "campaign_begin");
  EXPECT_EQ(types.back(), "campaign_end");
  for (std::size_t i = 1; i + 1 < types.size(); ++i) EXPECT_EQ(types[i], "unit");

  // The end record carries the aggregate cells.
  const JsonValue end = json_parse(out.str().substr(out.str().rfind("{\"type\":\"campaign_end")));
  const JsonValue* cells = end.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items().size(), 1u);
  EXPECT_EQ(*cells->items()[0].find("total")->as_u64(), 8u);
}

TEST(ResultSinkTest, CsvSinkEmitsOneHeaderAndOneRowPerUnit) {
  std::ostringstream out;
  CsvSink sink(out);
  run_campaign(sequential_spec(), &sink);
  // A second (batch) campaign through the SAME sink: rows append, the
  // header does not repeat, and the campaign column keeps them apart.
  CampaignSpec second = sequential_spec();
  second.name = "sink-test-2";
  run_campaign(second, &sink);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 1u + 8u + 8u);
  EXPECT_EQ(rows[0], "campaign,scheme,class,fault,describe,detected_all,detected_any");
  EXPECT_EQ(rows[1].rfind("\"sink-test\",twm,saf,0,", 0), 0u) << rows[1];
  EXPECT_EQ(rows[9].rfind("\"sink-test-2\",twm,saf,0,", 0), 0u) << rows[9];
}

TEST(ResultSinkTest, TableSinkPrintsHeaderAndFooter) {
  std::ostringstream out;
  TableSink sink(out);
  run_campaign(sequential_spec(), &sink);
  EXPECT_NE(out.str().find("coverage: March C-, N=2, B=2"), std::string::npos);
  EXPECT_NE(out.str().find("backend=scalar"), std::string::npos);
  EXPECT_NE(out.str().find("| SAF"), std::string::npos);
  EXPECT_NE(out.str().find("faults/s"), std::string::npos);
}

// The redesign's core promise: a spec-driven campaign is verdict-identical
// to the legacy CoverageEvaluator facade it replaces.
TEST(ResultSinkTest, SpecCampaignMatchesLegacyEvaluator) {
  CampaignSpec spec;
  spec.words = 4;
  spec.width = 4;
  spec.march = "March C-";
  spec.schemes = {SchemeKind::ProposedExact, SchemeKind::TomtModel};
  spec.classes = *parse_classes("saf,tf,cfid:intra");
  spec.seeds = {0, 1, 2};
  spec.backend = CoverageBackend::Packed;
  spec.threads = 2;

  const CampaignSummary summary = run_campaign(spec);
  ASSERT_EQ(summary.cells.size(), 6u);

  const CoverageEvaluator legacy(spec.words, spec.width);
  const MarchTest march = march_by_name(spec.march);
  std::size_t i = 0;
  for (SchemeKind k : spec.schemes) {
    for (const ClassSel& cls : spec.classes) {
      const auto faults = build_fault_list(cls, spec.words, spec.width);
      const CoverageOutcome want = legacy.evaluate(k, march, faults, spec.seeds);
      const CoverageOutcome& got = summary.cells[i++].outcome;
      EXPECT_EQ(got.total, want.total) << scheme_id(k) << "/" << to_string(cls);
      EXPECT_EQ(got.detected_all, want.detected_all) << scheme_id(k) << "/" << to_string(cls);
      EXPECT_EQ(got.detected_any, want.detected_any) << scheme_id(k) << "/" << to_string(cls);
    }
  }
}

TEST(ResultSinkTest, RunCampaignRejectsInvalidSpec) {
  CampaignSpec spec = sequential_spec();
  spec.words = 0;
  EXPECT_THROW(run_campaign(spec), SpecValidationError);
}

TEST(ResultSinkTest, DiagnoseCampaignLocalizesSpecFaults) {
  CampaignSpec spec = sequential_spec();
  spec.seeds = {3};
  const auto diags = diagnose_campaign(spec);
  const auto faults = build_fault_list(spec.classes[0], spec.words, spec.width);
  ASSERT_EQ(diags.size(), faults.size());
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (diags[i].fault_found) {
      EXPECT_EQ(diags[i].suspect_word, faults[i].victim.word);
    }
  }
}

TEST(ResultSinkTest, DiagnoseCampaignMergesAcrossEverySeed) {
  // State coupling faults are content-dependent: whether the aggressor's
  // state perturbs the victim during the transparent session depends on the
  // initial contents, so each seed localizes a different subset.  The old
  // behavior diagnosed spec.seeds.front() ONLY and silently dropped the
  // rest; diagnosing every seed recovers the faults seed 0 misses.
  CampaignSpec spec = sequential_spec();
  spec.words = 4;
  spec.width = 4;
  spec.classes = {{ClassKind::CFst, CfScope::Both}};
  spec.seeds = {0};
  const auto zero_only = diagnose_campaign(spec);
  std::size_t found_zero = 0;
  for (const auto& d : zero_only) found_zero += d.fault_found;
  ASSERT_LT(found_zero, zero_only.size()) << "seed 0 should miss some CFst faults";

  spec.seeds = {0, 3, 7};
  const auto merged = diagnose_campaign(spec);
  ASSERT_EQ(merged.size(), zero_only.size());
  std::size_t found_merged = 0;
  for (const auto& d : merged) found_merged += d.fault_found;
  EXPECT_GT(found_merged, found_zero) << "later seeds must contribute their findings";
  // First-seed-wins: where seed 0 already localized, the merge keeps it.
  for (std::size_t i = 0; i < merged.size(); ++i)
    if (zero_only[i].fault_found) {
      EXPECT_TRUE(merged[i].fault_found);
      EXPECT_EQ(merged[i].suspect_word, zero_only[i].suspect_word);
    }
}

// A forwarding sink that lets the campaign be cancelled mid-run while a
// real TableSink observes begin/end — the cancelled-campaign table shape.
class CancellingTableSink : public ResultSink {
 public:
  CancellingTableSink(std::ostream& out, std::size_t cancel_after) : table_(out), cancel_after_(cancel_after) {}
  void on_campaign_begin(const CampaignMeta& meta) override { table_.on_campaign_begin(meta); }
  void on_unit(const UnitRecord&) override {
    if (++units_ >= cancel_after_) cancelled_.store(true, std::memory_order_relaxed);
  }
  void on_campaign_end(const CampaignSummary& summary) override { table_.on_campaign_end(summary); }
  bool cancelled() const override { return cancelled_.load(std::memory_order_relaxed); }

 private:
  TableSink table_;
  std::size_t cancel_after_;
  std::size_t units_ = 0;
  std::atomic<bool> cancelled_{false};
};

TEST(ResultSinkTest, TableSinkPrintsPlaceholderRowsForCancelledCampaigns) {
  // Cancel inside the first of two cells: no aggregate exists for either
  // class, yet the table must still show both rows — as "—" placeholders,
  // not by silently dropping them (the old behavior made a cancelled
  // campaign's table indistinguishable from a narrower spec's).
  CampaignSpec spec = sequential_spec();
  spec.classes = {{ClassKind::Saf, CfScope::Both}, {ClassKind::Tf, CfScope::Both}};
  std::ostringstream out;
  CancellingTableSink sink(out, /*cancel_after=*/3);
  const CampaignSummary summary = run_campaign(spec, &sink);
  ASSERT_TRUE(summary.cancelled);
  ASSERT_TRUE(summary.cells.empty());
  EXPECT_NE(out.str().find("| SAF"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("| TF"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("—"), std::string::npos) << out.str();

  // Matrix shape (multi-scheme) gets the same treatment.
  spec.schemes = {SchemeKind::ProposedExact, SchemeKind::TomtModel};
  std::ostringstream mout;
  CancellingTableSink msink(mout, /*cancel_after=*/3);
  run_campaign(spec, &msink);
  EXPECT_NE(mout.str().find("—"), std::string::npos) << mout.str();
}

// ---- locale-independent float formatting ---------------------------------

TEST(ReportFormat, FixedStrShapesAreExact) {
  EXPECT_EQ(fixed_str(0.0, 6), "0.000000");
  EXPECT_EQ(fixed_str(0.123456, 6), "0.123456");
  EXPECT_EQ(fixed_str(1.0, 1), "1.0");
  EXPECT_EQ(fixed_str(99.96, 1), "100.0");  // rounds, carries
  EXPECT_EQ(fixed_str(-0.5, 1), "-0.5");
  EXPECT_EQ(fixed_str(829233.4, 0), "829233");
  EXPECT_EQ(fixed_str(0.0000004, 6), "0.000000");
  EXPECT_EQ(pct_str(100.0), "100.0%");
}

TEST(ReportFormat, FloatsKeepTheirDotUnderACommaDecimalLocale) {
  // snprintf("%.6f") writes "0,123456" under a comma-decimal LC_NUMERIC —
  // which breaks every machine consumer of the JSON-lines stream.  The
  // formatting layer must not consult the locale at all.  Containers
  // without any comma locale installed skip the locale flip but still ran
  // the exact-shape assertions above.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous ? previous : "C";
  const char* candidates[] = {"de_DE.UTF-8", "fr_FR.UTF-8", "de_DE.utf8",
                              "fr_FR.utf8", "de_DE", "fr_FR"};
  const char* applied = nullptr;
  for (const char* name : candidates)
    if (std::setlocale(LC_NUMERIC, name)) {
      applied = name;
      break;
    }
  if (!applied) GTEST_SKIP() << "no comma-decimal locale installed";

  std::ostringstream out;
  JsonLinesSink sink(out);
  run_campaign(sequential_spec(), &sink);
  std::setlocale(LC_NUMERIC, saved.c_str());

  EXPECT_EQ(out.str().find(','), std::string::npos)
      << "comma leaked into the JSON-lines stream";
  // Every line still parses; the end record's seconds field survives.
  std::istringstream lines(out.str());
  std::string line, last;
  while (std::getline(lines, line)) {
    ASSERT_NO_THROW(json_parse(line)) << line;
    last = line;
  }
  EXPECT_NE(json_parse(last).find("seconds"), nullptr);
  EXPECT_EQ(fixed_str(0.5, 2), "0.50");  // direct check under the C locale again
}

}  // namespace
}  // namespace twm::api
