// Tests for the design-space exploration subsystem (src/explore): spec
// validation and JSON round-trips, the determinism contracts the CLI and CI
// gate rely on (threads 1 vs N, kill + resume), strict state-file
// rejection, and the acceptance property from the issue — the demo search
// finds a feasible march strictly cheaper than the March C- baseline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "explore/explore.h"
#include "explore/spec.h"

namespace twm::explore {
namespace {

// Small enough to score in milliseconds, rich enough to move the front.
ExploreSpec small_spec() {
  ExploreSpec s;
  s.name = "unit-dse";
  s.words = 4;
  s.width = 4;
  s.objective = {{{api::ClassKind::Saf, CfScope::Both}, 100},
                 {{api::ClassKind::Tf, CfScope::Both}, 100}};
  s.seeds = {0, 1};
  s.population = 8;
  s.rounds = 3;
  s.search_seed = 7;
  s.threads = 2;
  return s;
}

bool has_error_at(const std::vector<api::SpecError>& errors, const std::string& path) {
  for (const api::SpecError& e : errors)
    if (e.path == path) return true;
  return false;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "twm_explore_" + name;
}

// ---- spec validation ----------------------------------------------------

TEST(ExploreSpecValidate, SmallSpecIsValid) { EXPECT_TRUE(validate(small_spec()).empty()); }

TEST(ExploreSpecValidate, RejectsBadGeometry) {
  auto s = small_spec();
  s.words = 0;
  EXPECT_TRUE(has_error_at(validate(s), "memory.words"));
  s = small_spec();
  s.width = 12;  // not a power of two
  EXPECT_TRUE(has_error_at(validate(s), "memory.width"));
}

TEST(ExploreSpecValidate, RejectsMarchIndependentScheme) {
  auto s = small_spec();
  s.scheme = SchemeKind::TomtModel;
  const auto errors = validate(s);
  ASSERT_TRUE(has_error_at(errors, "objective.scheme"));
  EXPECT_NE(errors[0].message.find("march-independent"), std::string::npos);
}

TEST(ExploreSpecValidate, RejectsEmptyAndDuplicateObjective) {
  auto s = small_spec();
  s.objective.clear();
  EXPECT_TRUE(has_error_at(validate(s), "objective.classes"));
  s = small_spec();
  s.objective.push_back(s.objective[0]);
  EXPECT_TRUE(has_error_at(validate(s), "objective.classes[2]"));
}

TEST(ExploreSpecValidate, RejectsFloorAbove100AndZeroWeights) {
  auto s = small_spec();
  s.objective[0].floor_pct = 101;
  EXPECT_TRUE(has_error_at(validate(s), "objective.classes[0].floor"));
  s = small_spec();
  s.tcm_weight = 0;
  s.tcp_weight = 0;
  EXPECT_TRUE(has_error_at(validate(s), "objective.weights"));
}

TEST(ExploreSpecValidate, RejectsDegenerateSearchBudget) {
  auto s = small_spec();
  s.population = 1;
  EXPECT_TRUE(has_error_at(validate(s), "search.population"));
  s = small_spec();
  s.rounds = 0;
  EXPECT_TRUE(has_error_at(validate(s), "search.rounds"));
  s = small_spec();
  s.mutation_weights.assign(kMutationKinds, 0);
  s.splice_weight = 0;
  EXPECT_TRUE(has_error_at(validate(s), "search.mutations"));
  s = small_spec();
  s.seeds.clear();
  EXPECT_TRUE(has_error_at(validate(s), "seeds"));
}

// ---- JSON ---------------------------------------------------------------

TEST(ExploreSpecJson, RoundTripsExactly) {
  auto s = small_spec();
  EXPECT_EQ(explore_from_json(to_json(s)), s);
  // Non-default everything still round-trips.
  s.scheme = SchemeKind::ProposedSymmetricXor;
  s.objective[1].floor_pct = 95;
  s.tcm_weight = 2;
  s.tcp_weight = 3;
  s.mutation_weights[2] = 5;
  s.splice_weight = 4;
  s.backend = CoverageBackend::Scalar;
  s.schedule = ScheduleMode::Dense;
  s.collapse = false;
  EXPECT_EQ(explore_from_json(to_json(s)), s);
}

TEST(ExploreSpecJson, DefaultsAreOptionalInTheFile) {
  const ExploreSpec parsed = explore_from_json(
      R"({"memory":{"words":4,"width":4},"objective":{"classes":["saf"]},"seeds":[0]})");
  EXPECT_EQ(parsed.scheme, SchemeKind::ProposedExact);
  EXPECT_EQ(parsed.population, 12u);
  EXPECT_EQ(parsed.rounds, 6u);
  EXPECT_EQ(parsed.mutation_weights, std::vector<unsigned>(kMutationKinds, 1));
  EXPECT_TRUE(validate(parsed).empty());
}

TEST(ExploreSpecJson, StructuralErrorsNameTheirPaths) {
  try {
    explore_from_json(
        R"({"memory":{"words":4,"width":4},"objective":{"classes":["warp"]},
            "seeds":[0],"search":{"mutations":{"teleport":1}},"surprise":1})");
    FAIL() << "expected SpecValidationError";
  } catch (const api::SpecValidationError& e) {
    EXPECT_TRUE(has_error_at(e.errors(), "objective.classes[0]"));
    EXPECT_TRUE(has_error_at(e.errors(), "search.mutations.teleport"));
    EXPECT_TRUE(has_error_at(e.errors(), "surprise"));
  }
}

TEST(ExploreSpecJson, IdentityExcludesRoundsAndRun) {
  auto a = small_spec();
  auto b = small_spec();
  b.rounds = 99;
  b.threads = 16;
  b.backend = CoverageBackend::Scalar;
  b.schedule = ScheduleMode::Dense;
  b.collapse = false;
  EXPECT_EQ(explore_identity_json(a), explore_identity_json(b));
  b = small_spec();
  b.search_seed = 8;
  EXPECT_NE(explore_identity_json(a), explore_identity_json(b));
}

// ---- determinism --------------------------------------------------------

TEST(Explore, ThreadCountDoesNotChangeTheFront) {
  auto s1 = small_spec();
  s1.threads = 1;
  auto s4 = small_spec();
  s4.threads = 4;
  const ExploreResult r1 = run_explore(s1);
  const ExploreResult r4 = run_explore(s4);
  EXPECT_EQ(r1.front, r4.front);
  EXPECT_EQ(r1.baselines, r4.baselines);
  EXPECT_EQ(r1.evaluations, r4.evaluations);
  // The canonical report is byte-identical (cache counters are kept out of
  // it for exactly this reason).
  EXPECT_EQ(result_to_json(s1, r1), result_to_json(s4, r4));
}

// An observer that cancels the search after K completed rounds.
class StopAfter : public ExploreObserver {
 public:
  explicit StopAfter(unsigned k) : k_(k) {}
  void on_round(const RoundSummary&) override { ++seen_; }
  bool cancelled() const override { return seen_ >= k_; }

 private:
  unsigned k_;
  unsigned seen_ = 0;
};

TEST(Explore, KillAndResumeReproducesTheUninterruptedFront) {
  const ExploreSpec spec = small_spec();
  const std::string state = temp_path("resume_state.json");
  std::remove(state.c_str());

  const ExploreResult straight = run_explore(spec);

  // Interrupt after round 1, then resume to completion — same state file.
  StopAfter stop(1);
  const ExploreResult partial = run_explore(spec, &stop, state);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_EQ(partial.rounds_run, 1u);
  const ExploreResult resumed = run_explore(spec, nullptr, state);
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(resumed.rounds_run, spec.rounds);

  EXPECT_EQ(resumed.front, straight.front);
  EXPECT_EQ(resumed.baselines, straight.baselines);
  EXPECT_EQ(result_to_json(spec, resumed), result_to_json(spec, straight));

  // A finished state resumes as a no-op with the same front.
  const ExploreResult again = run_explore(spec, nullptr, state);
  EXPECT_EQ(again.front, straight.front);
  std::remove(state.c_str());
}

TEST(Explore, ResumeCanExtendTheRoundBudget) {
  const std::string state = temp_path("extend_state.json");
  std::remove(state.c_str());
  auto spec = small_spec();
  spec.rounds = 2;
  run_explore(spec, nullptr, state);
  // More rounds, same identity: continues past round 2 instead of rejecting.
  spec.rounds = 4;
  const ExploreResult extended = run_explore(spec, nullptr, state);
  EXPECT_EQ(extended.rounds_run, 4u);

  auto straight_spec = small_spec();
  straight_spec.rounds = 4;
  const ExploreResult straight = run_explore(straight_spec);
  EXPECT_EQ(extended.front, straight.front);
  std::remove(state.c_str());
}

TEST(Explore, RejectsForeignAndMalformedStateFiles) {
  const ExploreSpec spec = small_spec();
  const std::string state = temp_path("bad_state.json");

  std::ofstream(state) << "}{ not json";
  EXPECT_THROW(run_explore(spec, nullptr, state), std::runtime_error);

  std::ofstream(state) << R"({"some":"other tool's file"})";
  EXPECT_THROW(run_explore(spec, nullptr, state), std::runtime_error);

  // A state written by a DIFFERENT search must not silently seed this one.
  const std::string other_state = temp_path("other_state.json");
  std::remove(other_state.c_str());
  auto other = small_spec();
  other.search_seed = 99;
  run_explore(other, nullptr, other_state);
  try {
    run_explore(spec, nullptr, other_state);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("identity mismatch"), std::string::npos);
  }
  std::remove(state.c_str());
  std::remove(other_state.c_str());
}

// ---- search quality -----------------------------------------------------

// The issue's acceptance property, in-process on the demo geometry: the
// front is nonempty, every member is consistent input for a campaign, the
// catalog baselines are folded in, and some feasible member is strictly
// cheaper than the March C- baseline at equal-or-better coverage.
TEST(Explore, DemoSearchBeatsTheMarchCMinusBaseline) {
  ExploreSpec s;
  s.name = "demo";
  s.words = 8;
  s.width = 8;
  s.objective = {{{api::ClassKind::Saf, CfScope::Both}, 100},
                 {{api::ClassKind::Tf, CfScope::Both}, 100}};
  s.seeds = {0, 1};
  s.population = 12;
  s.rounds = 5;
  s.search_seed = 1;
  s.threads = 2;

  const ExploreResult r = run_explore(s);
  ASSERT_FALSE(r.front.empty());
  ASSERT_FALSE(r.baselines.empty());

  const Candidate* c_minus = nullptr;
  for (const Candidate& b : r.baselines)
    if (b.origin == "catalog:March C-") c_minus = &b;
  ASSERT_NE(c_minus, nullptr);

  bool beats_baseline = false;
  for (const Candidate& c : r.front) {
    if (!c.feasible || c.weighted >= c_minus->weighted) continue;
    bool covers = true;
    for (std::size_t i = 0; i < c.detected.size(); ++i)
      covers = covers && c.detected[i] >= c_minus->detected[i];
    beats_baseline = beats_baseline || covers;
  }
  EXPECT_TRUE(beats_baseline) << result_to_json(s, r);

  // The front is mutually nondominated and sorted by weighted complexity.
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    for (std::size_t j = 0; j < r.front.size(); ++j)
      if (i != j) EXPECT_FALSE(dominates(r.front[i], r.front[j])) << i << " vs " << j;
    if (i) EXPECT_LE(r.front[i - 1].weighted, r.front[i].weighted);
  }
}

}  // namespace
}  // namespace twm::explore
