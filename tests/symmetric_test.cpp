// Tests for the symmetric transparent BIST extension (reference [18] of the
// paper): signature-constant correctness, prediction-free detection, and
// the aliasing behaviour the paper's introduction warns about.
#include <gtest/gtest.h>

#include "core/symmetric.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Symmetric, RejectsNonTransparentInput) {
  EXPECT_THROW(symmetrize(march_by_name("March C-"), 8), std::invalid_argument);
}

TEST(Symmetric, RejectsNonRestoringInput) {
  // TSMarch of MATS (deferred restore) leaves ~a.
  const TwmResult r = twm_transform(march_by_name("MATS"), 8);
  EXPECT_THROW(symmetrize(r.tsmarch, 8), std::invalid_argument);
}

TEST(Symmetric, BalancesOddReadCounts) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  // TWMarch(March C-) B=8: 5 + 3*3+1 = 15 reads -> odd -> balanced to 16.
  ASSERT_EQ(r.twmarch.read_count() % 2, 1u);
  const SymmetricTest st = symmetrize(r.twmarch, 8);
  EXPECT_EQ(st.test.read_count() % 2, 0u);
  EXPECT_EQ(st.test.op_count(), r.twmarch.op_count() + 1);
  EXPECT_TRUE(is_symmetric(st.test));
}

TEST(Symmetric, KeepsEvenReadCountsUntouched) {
  const TwmResult r = twm_transform(march_by_name("March U"), 8);
  const std::size_t reads = r.twmarch.read_count();
  const SymmetricTest st = symmetrize(r.twmarch, 8);
  if (reads % 2 == 0)
    EXPECT_EQ(st.test.op_count(), r.twmarch.op_count());
  else
    EXPECT_EQ(st.test.op_count(), r.twmarch.op_count() + 1);
  EXPECT_TRUE(is_symmetric(st.test));
}

TEST(Symmetric, FaultFreeSignatureIsTheConstantForAnyContent) {
  for (const char* name : {"March C-", "March U", "March B"}) {
    const TwmResult r = twm_transform(march_by_name(name), 16);
    const SymmetricTest st = symmetrize(r.twmarch, 16);
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      for (std::size_t words : {5u, 8u}) {  // odd and even N
        Rng rng(seed);
        Memory mem(words, 16);
        mem.fill_random(rng);
        const auto snapshot = mem.snapshot();
        const auto out = run_symmetric_session(mem, st);
        EXPECT_FALSE(out.detected) << name << " seed " << seed << " N " << words;
        EXPECT_EQ(out.signature, st.expected_signature(words));
        EXPECT_TRUE(mem.equals(snapshot)) << "symmetric session must stay transparent";
      }
    }
  }
}

TEST(Symmetric, ExpectedSignatureParityRule) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  const SymmetricTest st = symmetrize(r.twmarch, 8);
  EXPECT_TRUE(st.expected_signature(4).all_zero());       // even N cancels
  EXPECT_EQ(st.expected_signature(5), st.mask_xor);       // odd N leaves mask term
}

TEST(Symmetric, DetectsTransitionFaultWithoutPrediction) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  const SymmetricTest st = symmetrize(r.twmarch, 8);
  Rng rng(9);
  Memory mem(8, 8);
  mem.fill_random(rng);
  mem.inject(Fault::tf({3, 2}, Transition::Up));
  EXPECT_TRUE(run_symmetric_session(mem, st).detected);
}

// The aliasing weakness: a stuck-at error contributes once per read of the
// cell; whether the contributions cancel depends on the XOR of the read
// masks at that bit.  We verify the prediction-based MISR flow catches
// every SAF in a campaign while the symmetric XOR flow misses the
// structurally-aliased subset.
TEST(Symmetric, XorAccumulatorAliasingOnSaf) {
  const unsigned width = 8;
  const TwmResult r = twm_transform(march_by_name("March U"), width);
  const SymmetricTest st = symmetrize(r.twmarch, width);

  std::size_t missed = 0, total = 0;
  for (unsigned bit = 0; bit < width; ++bit) {
    for (bool v : {false, true}) {
      Rng rng(100 + bit);
      Memory mem(4, width);
      mem.fill_random(rng);
      mem.inject(Fault::saf({1, bit}, v));
      total += 1;
      if (!run_symmetric_session(mem, st).detected) ++missed;
    }
  }
  // The symmetric scheme's SAF escape rate is a structural property of the
  // read-mask XOR profile; it must detect the majority but the test
  // documents that aliasing escapes are real (or zero if masks cover all
  // bits — either way, strictly fewer detections than total+1).
  EXPECT_LT(missed, total);
  EXPECT_GE(total - missed, total / 2);
}

TEST(Symmetric, TcpIsZeroByConstruction) {
  // The whole point: one pass, no prediction test.  Session cost equals
  // TCM alone; compare with the paper's scheme for March C-, B = 32.
  const TwmResult r = twm_transform(march_by_name("March C-"), 32);
  const SymmetricTest st = symmetrize(r.twmarch, 32);
  EXPECT_LE(st.test.op_count(), r.twmarch.op_count() + 1);
  EXPECT_LT(st.test.op_count(), r.twmarch.op_count() + r.prediction.op_count());
}

}  // namespace
}  // namespace twm
