// Tests for the transparent-BIST controller: session sequencing, step
// accounting against the paper's complexity, fault detection, and the
// idle-time interaction semantics (functional reads corrected mid-session,
// functional writes abort + restore).
#include <gtest/gtest.h>

#include "bist/tbist.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "util/rng.h"

namespace twm {
namespace {

TbistController::Config config_for(const std::string& march, unsigned width) {
  const TwmResult r = twm_transform(march_by_name(march), width);
  return {r.twmarch, r.prediction, 0};
}

TEST(Tbist, RejectsIllFormedConfigs) {
  Memory mem(8, 8);
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  {
    TbistController::Config bad{r.twmarch, r.twmarch, 0};  // prediction has writes
    EXPECT_THROW(TbistController(mem, bad), std::invalid_argument);
  }
  {
    MarchTest not_transparent = march_by_name("March C-");
    TbistController::Config bad{not_transparent, r.prediction, 0};
    EXPECT_THROW(TbistController(mem, bad), std::invalid_argument);
  }
}

TEST(Tbist, SessionCostIsTcpPlusTcmPlusCompare) {
  Rng rng(3);
  Memory mem(16, 8);
  mem.fill_random(rng);
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  TbistController ctrl(mem, {r.twmarch, r.prediction, 0});

  ctrl.start_session();
  EXPECT_EQ(ctrl.state(), TbistController::State::Predict);
  while (ctrl.step()) {
  }
  EXPECT_EQ(ctrl.state(), TbistController::State::Done);
  EXPECT_FALSE(ctrl.last_session_failed());

  const std::uint64_t expected_steps =
      (r.prediction.op_count() + r.twmarch.op_count()) * mem.num_words() + 1;
  EXPECT_EQ(ctrl.stats().steps, expected_steps);
  EXPECT_EQ(ctrl.stats().sessions_completed, 1u);
  EXPECT_EQ(ctrl.predicted_signature(), ctrl.observed_signature());
}

TEST(Tbist, SessionIsTransparent) {
  Rng rng(4);
  Memory mem(12, 16);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();
  TbistController ctrl(mem, config_for("March U", 16));
  EXPECT_FALSE(ctrl.run_session_to_completion());
  EXPECT_TRUE(mem.equals(snapshot));
}

TEST(Tbist, DetectsFaultAppearingBetweenSessions) {
  Rng rng(5);
  Memory mem(16, 8);
  mem.fill_random(rng);
  TbistController ctrl(mem, config_for("March C-", 8));

  EXPECT_FALSE(ctrl.run_session_to_completion());  // healthy
  mem.inject(Fault::tf({7, 2}, Transition::Down));
  EXPECT_TRUE(ctrl.run_session_to_completion());  // caught in the next session
  EXPECT_EQ(ctrl.stats().failures_detected, 1u);
  EXPECT_EQ(ctrl.stats().sessions_started, 2u);
}

TEST(Tbist, StartWhileActiveThrows) {
  Memory mem(4, 8);
  TbistController ctrl(mem, config_for("March C-", 8));
  ctrl.start_session();
  ctrl.step();
  EXPECT_THROW(ctrl.start_session(), std::logic_error);
}

TEST(Tbist, StepOutsideSessionIsNoop) {
  Memory mem(4, 8);
  TbistController ctrl(mem, config_for("March C-", 8));
  EXPECT_FALSE(ctrl.step());
  EXPECT_EQ(ctrl.stats().steps, 0u);
}

TEST(Tbist, FunctionalReadsCorrectedMidSession) {
  Rng rng(6);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();
  TbistController ctrl(mem, config_for("March C-", 8));
  ctrl.start_session();

  // At every step of the whole session, a functional read of every word
  // must return the functional (pre-session) data.
  std::size_t checked = 0;
  while (ctrl.step()) {
    for (std::size_t a = 0; a < mem.num_words(); ++a) {
      ASSERT_EQ(ctrl.functional_read(a), snapshot[a])
          << "addr " << a << " after step " << ctrl.stats().steps;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_FALSE(ctrl.last_session_failed());
}

TEST(Tbist, FunctionalWriteAbortsAndRestores) {
  Rng rng(7);
  Memory mem(8, 8);
  mem.fill_random(rng);
  auto expected = mem.snapshot();
  TbistController ctrl(mem, config_for("March C-", 8));

  ctrl.start_session();
  // Run deep into the test pass so several words are displaced.
  for (int i = 0; i < 150; ++i) ctrl.step();
  EXPECT_EQ(ctrl.state(), TbistController::State::Test);

  const BitVec newdata = BitVec::from_string("10110001");
  ctrl.functional_write(3, newdata);
  expected[3] = newdata;

  EXPECT_EQ(ctrl.state(), TbistController::State::Idle);
  EXPECT_EQ(ctrl.stats().sessions_aborted, 1u);
  EXPECT_TRUE(mem.equals(expected)) << "abort must restore displaced words";

  // The next session runs clean on the updated contents.
  EXPECT_FALSE(ctrl.run_session_to_completion());
}

TEST(Tbist, FunctionalWriteDuringPredictAborts) {
  Rng rng(8);
  Memory mem(8, 8);
  mem.fill_random(rng);
  auto expected = mem.snapshot();
  TbistController ctrl(mem, config_for("March C-", 8));
  ctrl.start_session();
  for (int i = 0; i < 10; ++i) ctrl.step();  // still in Predict (read-only)
  EXPECT_EQ(ctrl.state(), TbistController::State::Predict);

  const BitVec d = BitVec::from_string("00000001");
  ctrl.functional_write(0, d);
  expected[0] = d;
  EXPECT_EQ(ctrl.state(), TbistController::State::Idle);
  EXPECT_TRUE(mem.equals(expected));
}

TEST(Tbist, CheckpointsLocalizeFailingElement) {
  Rng rng(21);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  TbistController ctrl(mem, {r.twmarch, r.prediction, 0, /*element_checkpoints=*/true});

  // Clean session: no boundary mismatch recorded.
  EXPECT_FALSE(ctrl.run_session_to_completion());
  EXPECT_FALSE(ctrl.first_failing_element_known());

  // A rising-edge TF is activated by element 0's w(~a) (cell initially 0)
  // or element 1's w(a) (cell initially 1) and observed by the following
  // element's reads — so the first mismatching boundary is element 1 or 2,
  // far from the final ATMarch elements.
  mem.inject(Fault::tf({2, 4}, Transition::Up));
  EXPECT_TRUE(ctrl.run_session_to_completion());
  ASSERT_TRUE(ctrl.first_failing_element_known());
  EXPECT_GE(ctrl.failing_element(), 1u);
  EXPECT_LE(ctrl.failing_element(), 2u);
}

TEST(Tbist, CheckpointSessionStaysTransparent) {
  Rng rng(22);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();
  const TwmResult r = twm_transform(march_by_name("March U"), 8);
  TbistController ctrl(mem, {r.twmarch, r.prediction, 0, true});
  EXPECT_FALSE(ctrl.run_session_to_completion());
  EXPECT_TRUE(mem.equals(snapshot));
}

TEST(Tbist, CheckpointAndFinalCompareAgree) {
  // Any fault flagged by the final compare that was activated before the
  // last element must also be visible at a boundary.
  Rng rng(23);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  TbistController ctrl(mem, {r.twmarch, r.prediction, 0, true});
  mem.inject(Fault::saf({5, 1}, !mem.peek(5).get(1)));
  EXPECT_TRUE(ctrl.run_session_to_completion());
  EXPECT_TRUE(ctrl.first_failing_element_known());
  EXPECT_LT(ctrl.failing_element(), r.twmarch.elements.size());
}

TEST(Tbist, AbortResumeCycleEventuallyCatchesFault) {
  Rng rng(9);
  Memory mem(8, 8);
  mem.fill_random(rng);
  TbistController ctrl(mem, config_for("March C-", 8));
  mem.inject(Fault::saf({4, 4}, true));

  // Interrupt the first two attempts with system writes, then let one run
  // through: the completed session must detect.
  for (int attempt = 0; attempt < 2; ++attempt) {
    ctrl.start_session();
    for (int i = 0; i < 60; ++i) ctrl.step();
    ctrl.functional_write(1, BitVec::zeros(8));
  }
  EXPECT_EQ(ctrl.stats().sessions_aborted, 2u);
  EXPECT_TRUE(ctrl.run_session_to_completion());
}

}  // namespace
}  // namespace twm
