// Tests for the declarative campaign spec: field-by-field validation with
// structured errors, canonical enum spellings (parse(to_string(x)) == x for
// every enum the spec serializes), and exact JSON round-trips including the
// batch form.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/json.h"
#include "api/spec.h"
#include "march/generator.h"

namespace twm::api {
namespace {

CampaignSpec valid_spec() {
  CampaignSpec s;
  s.name = "unit-test";
  s.words = 4;
  s.width = 4;
  s.march = "March C-";
  s.schemes = {SchemeKind::ProposedExact};
  s.classes = {{ClassKind::Saf, CfScope::Both}};
  s.seeds = {0, 1};
  s.backend = CoverageBackend::Packed;
  s.threads = 2;
  s.simd = simd::Request::Auto;
  return s;
}

bool has_error_at(const std::vector<SpecError>& errors, const std::string& path) {
  return std::any_of(errors.begin(), errors.end(),
                     [&](const SpecError& e) { return e.path == path; });
}

// ---- validation: one test per invalid field ----------------------------

TEST(SpecValidate, ValidSpecHasNoErrors) { EXPECT_TRUE(validate(valid_spec()).empty()); }

TEST(SpecValidate, ZeroWordsNamesMemoryWords) {
  auto s = valid_spec();
  s.words = 0;
  const auto errors = validate(s);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].path, "memory.words");
  EXPECT_NE(errors[0].message.find("at least 1"), std::string::npos);
}

TEST(SpecValidate, ZeroWidthNamesMemoryWidth) {
  auto s = valid_spec();
  s.width = 0;
  EXPECT_TRUE(has_error_at(validate(s), "memory.width"));
}

TEST(SpecValidate, UnknownMarchNamesMarchField) {
  auto s = valid_spec();
  s.march = "March Z";
  const auto errors = validate(s);
  ASSERT_TRUE(has_error_at(errors, "march"));
  EXPECT_NE(errors[0].message.find("March Z"), std::string::npos);
}

TEST(SpecValidate, EmptyMarchNamesMarchField) {
  auto s = valid_spec();
  s.march.clear();
  EXPECT_TRUE(has_error_at(validate(s), "march"));
}

TEST(SpecValidate, EmptySchemesNamesSchemes) {
  auto s = valid_spec();
  s.schemes.clear();
  EXPECT_TRUE(has_error_at(validate(s), "schemes"));
}

TEST(SpecValidate, EmptyClassesNamesClasses) {
  auto s = valid_spec();
  s.classes.clear();
  EXPECT_TRUE(has_error_at(validate(s), "classes"));
}

TEST(SpecValidate, EmptySeedsNamesSeeds) {
  auto s = valid_spec();
  s.seeds.clear();
  EXPECT_TRUE(has_error_at(validate(s), "seeds"));
}

TEST(SpecValidate, ZeroThreadsNamesRunThreads) {
  auto s = valid_spec();
  s.threads = 0;
  EXPECT_TRUE(has_error_at(validate(s), "run.threads"));
}

TEST(SpecValidate, ForcedUnsupportedSimdNamesRunSimd) {
  // Host-dependent: find a width this CPU cannot execute.  On a machine
  // supporting every width the error path cannot fire — skip there.
  auto s = valid_spec();
  if (!simd::supported(simd::Width::W512)) {
    s.simd = simd::Request::W512;
  } else if (!simd::supported(simd::Width::W256)) {
    s.simd = simd::Request::W256;
  } else {
    GTEST_SKIP() << "every SIMD width supported on this host";
  }
  const auto errors = validate(s);
  ASSERT_TRUE(has_error_at(errors, "run.simd"));
  EXPECT_NE(errors[0].message.find("not supported"), std::string::npos);
}

TEST(SpecValidate, ForcedSimdOnScalarBackendIsIgnored) {
  auto s = valid_spec();
  s.backend = CoverageBackend::Scalar;
  s.simd = simd::Request::W512;  // scalar has no lanes; must not error
  EXPECT_TRUE(validate(s).empty());
}

TEST(SpecValidate, MultipleProblemsAllReported) {
  CampaignSpec s;  // words/width zero, march empty, everything else empty
  const auto errors = validate(s);
  EXPECT_TRUE(has_error_at(errors, "memory.words"));
  EXPECT_TRUE(has_error_at(errors, "memory.width"));
  EXPECT_TRUE(has_error_at(errors, "march"));
  EXPECT_TRUE(has_error_at(errors, "schemes"));
  EXPECT_TRUE(has_error_at(errors, "classes"));
  EXPECT_TRUE(has_error_at(errors, "seeds"));
}

TEST(SpecValidate, RequireValidThrowsWithStructuredErrors) {
  auto s = valid_spec();
  s.words = 0;
  s.threads = 0;
  try {
    require_valid(s);
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    EXPECT_TRUE(has_error_at(e.errors(), "memory.words"));
    EXPECT_TRUE(has_error_at(e.errors(), "run.threads"));
    EXPECT_NE(std::string(e.what()).find("memory.words"), std::string::npos);
  }
}

// ---- canonical enum spellings round-trip -------------------------------

TEST(SpecEnums, BackendRoundTrips) {
  for (CoverageBackend b : {CoverageBackend::Scalar, CoverageBackend::Packed}) {
    const auto parsed = parse_backend(to_string(b));
    ASSERT_TRUE(parsed.has_value()) << to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(parse_backend("quantum").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("Packed").has_value());  // no case folding
}

TEST(SpecEnums, SimdRequestRoundTrips) {
  for (simd::Request r : {simd::Request::Auto, simd::Request::W64, simd::Request::W256,
                          simd::Request::W512, simd::Request::Tiled, simd::Request::Tiled4096,
                          simd::Request::Tiled32768}) {
    const auto parsed = simd::parse_request(simd::to_string(r));
    ASSERT_TRUE(parsed.has_value()) << simd::to_string(r);
    EXPECT_EQ(*parsed, r);
  }
  EXPECT_FALSE(simd::parse_request("128").has_value());
  EXPECT_FALSE(simd::parse_request("AUTO").has_value());
}

TEST(SpecEnums, SchemeIdRoundTrips) {
  for (SchemeKind k : kAllSchemes) {
    const auto parsed = parse_scheme(scheme_id(k));
    ASSERT_TRUE(parsed.has_value()) << scheme_id(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_scheme("zz").has_value());
  EXPECT_FALSE(parse_scheme("all").has_value());  // "all" is a list spelling
  // The display name is NOT the id.
  EXPECT_FALSE(parse_scheme(twm::to_string(SchemeKind::ProposedExact)).has_value());
}

TEST(SpecEnums, ClassSelRoundTripsEveryKindAndScope) {
  for (ClassKind kind : kAllClassKinds) {
    for (CfScope scope : {CfScope::Both, CfScope::InterWord, CfScope::IntraWord}) {
      ClassSel c{kind, scope};
      if (!c.is_coupling() && scope != CfScope::Both) continue;  // not expressible
      const auto parsed = parse_class(to_string(c));
      ASSERT_TRUE(parsed.has_value()) << to_string(c);
      EXPECT_EQ(*parsed, c);
    }
  }
}

TEST(SpecEnums, ClassSelRejections) {
  EXPECT_FALSE(parse_class("bogus").has_value());
  EXPECT_FALSE(parse_class("saf:inter").has_value());   // scope on a non-CF class
  EXPECT_FALSE(parse_class("af:intra").has_value());
  EXPECT_FALSE(parse_class("cfid:bogus").has_value());  // unknown scope
  EXPECT_FALSE(parse_class("cfid:").has_value());
  EXPECT_FALSE(parse_class("").has_value());
}

TEST(SpecEnums, CsvListSpellings) {
  // Every accepted spelling.
  const auto all = parse_schemes("all");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), std::size(kAllSchemes));
  EXPECT_TRUE(std::equal(all->begin(), all->end(), std::begin(kAllSchemes)));
  const auto pair = parse_schemes("twm,tomt");
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(*pair, (std::vector<SchemeKind>{SchemeKind::ProposedExact, SchemeKind::TomtModel}));
  const auto classes = parse_classes("saf,cfid:inter,af");
  ASSERT_TRUE(classes.has_value());
  EXPECT_EQ(classes->size(), 3u);
  EXPECT_EQ((*classes)[1], (ClassSel{ClassKind::CFid, CfScope::InterWord}));
  // Empty pieces are dropped, fully-empty lists rejected.
  EXPECT_TRUE(parse_classes("saf,,tf").has_value());
  EXPECT_FALSE(parse_classes("").has_value());
  EXPECT_FALSE(parse_classes(",").has_value());
  EXPECT_FALSE(parse_schemes("").has_value());
  // One bad element poisons the list.
  EXPECT_FALSE(parse_schemes("twm,zz").has_value());
  EXPECT_FALSE(parse_classes("saf,bogus").has_value());
}

// ---- JSON round-trip ----------------------------------------------------

TEST(SpecJson, RoundTripIsExact) {
  auto s = valid_spec();
  EXPECT_EQ(spec_from_json(to_json(s)), s);
  EXPECT_EQ(spec_from_json(to_json(s, /*pretty=*/false)), s);
}

TEST(SpecJson, RoundTripEverySchemeClassBackendAndBigSeeds) {
  CampaignSpec s = valid_spec();
  s.name = "exhaustive \"quoted\"\n\ttabs";
  s.schemes.assign(std::begin(kAllSchemes), std::end(kAllSchemes));
  s.classes.clear();
  for (ClassKind kind : kAllClassKinds) {
    s.classes.push_back({kind, CfScope::Both});
    if (ClassSel{kind, CfScope::Both}.is_coupling()) {
      s.classes.push_back({kind, CfScope::InterWord});
      s.classes.push_back({kind, CfScope::IntraWord});
    }
  }
  // Seeds above 2^53 would be mangled by a double-based JSON number model.
  s.seeds = {0, 1, (1ull << 53) + 1, UINT64_MAX};
  s.backend = CoverageBackend::Scalar;
  s.threads = 16;
  s.simd = simd::Request::W256;
  s.schedule = ScheduleMode::Dense;
  s.collapse = false;
  EXPECT_EQ(spec_from_json(to_json(s)), s);
}

TEST(SpecJson, BatchRoundTripsAndAcceptsSingleObject) {
  std::vector<CampaignSpec> batch{valid_spec(), valid_spec()};
  batch[1].name = "second";
  batch[1].backend = CoverageBackend::Scalar;
  EXPECT_EQ(specs_from_json(to_json(batch)), batch);
  // A single object parses as a one-element batch.
  const auto single = specs_from_json(to_json(batch[0]));
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], batch[0]);
}

TEST(SpecJson, GoldenSerialization) {
  auto s = valid_spec();
  const std::string expected =
      "{\"name\":\"unit-test\","
      "\"memory\":{\"words\":4,\"width\":4},"
      "\"march\":\"March C-\","
      "\"schemes\":[\"twm\"],"
      "\"classes\":[\"saf\"],"
      "\"seeds\":[0,1],"
      "\"run\":{\"backend\":\"packed\",\"threads\":2,\"simd\":\"auto\","
      "\"schedule\":\"repack\",\"collapse\":true}}";
  EXPECT_EQ(to_json(s, /*pretty=*/false), expected);
}

TEST(SpecJson, ScheduleAndCollapseRoundTripAndReject) {
  auto s = valid_spec();
  s.schedule = ScheduleMode::Dense;
  s.collapse = false;
  EXPECT_EQ(spec_from_json(to_json(s)), s);
  // Omitting the fields keeps the defaults (older spec files stay valid).
  const CampaignSpec parsed = spec_from_json(
      R"({"name":"x","memory":{"words":2,"width":2},"march":"March C-",
          "schemes":["twm"],"classes":["saf"],"seeds":[0]})");
  EXPECT_EQ(parsed.schedule, ScheduleMode::Repack);
  EXPECT_TRUE(parsed.collapse);
  // Bad spellings name their paths.
  try {
    spec_from_json(
        R"({"name":"x","memory":{"words":2,"width":2},"march":"March C-",
            "schemes":["twm"],"classes":["saf"],"seeds":[0],
            "run":{"schedule":"sparse","collapse":"yes"}})");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    EXPECT_TRUE(has_error_at(e.errors(), "run.schedule"));
    EXPECT_TRUE(has_error_at(e.errors(), "run.collapse"));
  }
  // parse(to_string(x)) == x for the schedule enum.
  for (ScheduleMode m : {ScheduleMode::Dense, ScheduleMode::Repack})
    EXPECT_EQ(parse_schedule(twm::to_string(m)), m);
  EXPECT_FALSE(parse_schedule("static").has_value());
}

TEST(SpecJson, StructuralErrorsNameTheirPaths) {
  // Unknown scheme inside the array names the element.
  try {
    spec_from_json(R"({"name":"x","memory":{"words":2,"width":2},"march":"March C-",
                       "schemes":["twm","zz"],"classes":["saf"],"seeds":[0]})");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    ASSERT_EQ(e.errors().size(), 1u);
    EXPECT_EQ(e.errors()[0].path, "schemes[1]");
    EXPECT_NE(e.errors()[0].message.find("zz"), std::string::npos);
  }
  // Missing required members, wrong types, unknown fields — all collected.
  try {
    spec_from_json(R"({"memory":"tiny","schemes":"twm","classes":["saf"],
                       "seeds":[-1],"surprise":1})");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    const auto& errors = e.errors();
    EXPECT_TRUE(has_error_at(errors, "memory"));
    EXPECT_TRUE(has_error_at(errors, "march"));
    EXPECT_TRUE(has_error_at(errors, "schemes"));
    EXPECT_TRUE(has_error_at(errors, "seeds[0]"));
    EXPECT_TRUE(has_error_at(errors, "surprise"));
  }
  // Batch errors carry the spec index.
  try {
    specs_from_json(R"([{"name":"ok","memory":{"words":2,"width":2},"march":"March C-",
                         "schemes":["twm"],"classes":["saf"],"seeds":[0]},
                        {"name":"bad","memory":{"words":2,"width":2},"march":"March C-",
                         "schemes":["twm"],"classes":["nope"],"seeds":[0]}])");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    ASSERT_EQ(e.errors().size(), 1u);
    EXPECT_EQ(e.errors()[0].path, "spec[1].classes[0]");
  }
  // Structural errors across SEVERAL batch entries are all collected in
  // one round, not reported fix-one-rerun style.
  try {
    specs_from_json(R"([{"name":"bad0","memory":{"words":2,"width":2},"march":"March C-",
                         "schemes":["zz"],"classes":["saf"],"seeds":[0]},
                        {"name":"ok","memory":{"words":2,"width":2},"march":"March C-",
                         "schemes":["twm"],"classes":["saf"],"seeds":[0]},
                        {"name":"bad2","memory":"nope","march":"March C-",
                         "schemes":["twm"],"classes":["saf"],"seeds":[0]}])");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    EXPECT_TRUE(has_error_at(e.errors(), "spec[0].schemes[0]"));
    EXPECT_TRUE(has_error_at(e.errors(), "spec[2].memory"));
  }
}

TEST(SpecEnums, ParseSeedsSpellings) {
  const auto ok = parse_seeds("0,1,18446744073709551615");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, (std::vector<std::uint64_t>{0, 1, UINT64_MAX}));
  // Empty pieces dropped; all-empty parses to an empty vector.
  EXPECT_EQ(parse_seeds("1,,2"), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(parse_seeds(""), std::vector<std::uint64_t>{});
  EXPECT_EQ(parse_seeds(","), std::vector<std::uint64_t>{});
  // Rejections name the offending token.
  for (const char* bad : {"x", "1,x", "-1", " 1", "2x", "1.5",
                          "18446744073709551616" /* UINT64_MAX + 1 */}) {
    std::string token;
    EXPECT_FALSE(parse_seeds(bad, &token).has_value()) << bad;
    EXPECT_FALSE(token.empty()) << bad;
  }
}

TEST(SpecJson, WidthOverflowIsRejectedNotTruncated) {
  // 2^32 + 4 must not silently run as width 4.
  try {
    spec_from_json(R"({"memory":{"words":2,"width":4294967300},"march":"March C-",
                       "schemes":["twm"],"classes":["saf"],"seeds":[0]})");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    ASSERT_EQ(e.errors().size(), 1u);
    EXPECT_EQ(e.errors()[0].path, "memory.width");
    EXPECT_NE(e.errors()[0].message.find("32-bit"), std::string::npos);
  }
}

TEST(SpecJson, RunDefaultsApplyWhenOmitted) {
  const auto s = spec_from_json(
      R"({"name":"d","memory":{"words":2,"width":2},"march":"March C-",
          "schemes":["twm"],"classes":["saf"],"seeds":[0]})");
  EXPECT_EQ(s.backend, CoverageBackend::Packed);
  EXPECT_EQ(s.threads, 1u);
  EXPECT_EQ(s.simd, simd::Request::Auto);
  EXPECT_EQ(s.name, "d");
}

TEST(SpecJson, MalformedJsonThrowsParseErrorWithPosition) {
  try {
    spec_from_json("{\"name\": }");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(spec_from_json(""), JsonParseError);
  EXPECT_THROW(spec_from_json("{} trailing"), JsonParseError);
}

// ---- fault-list denotation ---------------------------------------------

TEST(SpecClasses, BuildFaultListMatchesGenerators) {
  EXPECT_EQ(build_fault_list({ClassKind::Saf, CfScope::Both}, 4, 4).size(),
            all_safs(4, 4).size());
  EXPECT_EQ(build_fault_list({ClassKind::Af, CfScope::Both}, 4, 4).size(), all_afs(4).size());
  const auto inter = build_fault_list({ClassKind::CFid, CfScope::InterWord}, 4, 4);
  const auto intra = build_fault_list({ClassKind::CFid, CfScope::IntraWord}, 4, 4);
  const auto both = build_fault_list({ClassKind::CFid, CfScope::Both}, 4, 4);
  EXPECT_EQ(inter.size() + intra.size(), both.size());
  EXPECT_FALSE(inter.empty());
  EXPECT_FALSE(intra.empty());
}

// ---- parser hardening -----------------------------------------------------

TEST(SpecJson, NestingBombThrowsInsteadOfRecursingOffTheStack) {
  // A hostile "[[[[..." document once recursed once per bracket — deep
  // enough input crashed the process before any validation ran.  The
  // parser now caps container nesting and reports it as a parse error.
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "[";
  EXPECT_THROW(json_parse(bomb), JsonParseError);
  EXPECT_THROW(json_parse(std::string(300, '[')), JsonParseError);  // just past the cap

  // Mixed object/array nesting counts against the same cap.
  std::string mixed;
  for (int i = 0; i < 200; ++i) mixed += "{\"k\":[";
  EXPECT_THROW(json_parse(mixed), JsonParseError);
}

TEST(SpecJson, NestingUnderTheCapStillParses) {
  std::string deep;
  for (int i = 0; i < 250; ++i) deep += "[";
  for (int i = 0; i < 250; ++i) deep += "]";
  const JsonValue v = json_parse(deep);
  EXPECT_TRUE(v.is_array());
}

// ---- content addressing ---------------------------------------------------

TEST(SpecContent, CellKeyIsDeterministicAndWellFormed) {
  const CampaignSpec s = valid_spec();
  const std::string k1 = cell_key(s, s.schemes[0], s.classes[0]);
  const std::string k2 = cell_key(s, s.schemes[0], s.classes[0]);
  EXPECT_EQ(k1, k2);
  ASSERT_EQ(k1.size(), 32u);
  for (char c : k1) EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << k1;
}

TEST(SpecContent, IdentityCoversEveryVerdictRelevantFieldAndNothingElse) {
  const CampaignSpec base = valid_spec();
  const std::string key = cell_key(base, base.schemes[0], base.classes[0]);

  // Verdict-relevant changes move the key...
  CampaignSpec changed = base;
  changed.words = 8;
  EXPECT_NE(cell_key(changed, base.schemes[0], base.classes[0]), key);
  changed = base;
  changed.width = 8;
  EXPECT_NE(cell_key(changed, base.schemes[0], base.classes[0]), key);
  changed = base;
  changed.march = "MATS+";
  EXPECT_NE(cell_key(changed, base.schemes[0], base.classes[0]), key);
  changed = base;
  changed.seeds = {0, 1, 2};
  EXPECT_NE(cell_key(changed, base.schemes[0], base.classes[0]), key);
  EXPECT_NE(cell_key(base, SchemeKind::TomtModel, base.classes[0]), key);
  EXPECT_NE(cell_key(base, base.schemes[0], {ClassKind::Tf, CfScope::Both}), key);

  // ...while execution-mode changes (verdict-identical by construction)
  // and the label don't: cached cells are shared across all of them.
  changed = base;
  changed.name = "renamed";
  changed.backend = CoverageBackend::Scalar;
  changed.threads = 7;
  changed.simd = simd::Request::W64;
  changed.schedule = ScheduleMode::Dense;
  changed.collapse = false;
  EXPECT_EQ(cell_key(changed, base.schemes[0], base.classes[0]), key);
}

// ---- region sharding ------------------------------------------------------

TEST(SpecValidate, RegionsMustBeAPowerOfTwoWithinWords) {
  auto s = valid_spec();
  s.regions = 0;
  {
    const auto errors = validate(s);
    ASSERT_TRUE(has_error_at(errors, "run.regions"));
    EXPECT_NE(errors[0].message.find("at least 1"), std::string::npos);
  }
  s.regions = 3;
  {
    const auto errors = validate(s);
    ASSERT_TRUE(has_error_at(errors, "run.regions"));
    EXPECT_NE(errors[0].message.find("power of two"), std::string::npos);
  }
  s.regions = 8;  // words = 4: more shards than address slices
  {
    const auto errors = validate(s);
    ASSERT_TRUE(has_error_at(errors, "run.regions"));
    EXPECT_NE(errors[0].message.find("memory.words"), std::string::npos);
  }
  s.regions = 4;
  EXPECT_TRUE(validate(s).empty());
}

TEST(SpecJson, RegionsRoundTripAndDefaultOmission) {
  // regions = 1 is the implicit default: it must NOT appear in the JSON
  // (pre-region spec files and golden serializations stay byte-stable).
  auto s = valid_spec();
  EXPECT_EQ(to_json(s, /*pretty=*/false).find("regions"), std::string::npos);
  s.regions = 4;
  const std::string json = to_json(s, /*pretty=*/false);
  EXPECT_NE(json.find("\"regions\":4"), std::string::npos);
  EXPECT_EQ(spec_from_json(json), s);
  // Omitted -> default 1.
  const auto parsed = spec_from_json(
      R"({"name":"x","memory":{"words":2,"width":2},"march":"March C-",
          "schemes":["twm"],"classes":["saf"],"seeds":[0]})");
  EXPECT_EQ(parsed.regions, 1u);
  // Wrong type names its path.
  try {
    spec_from_json(
        R"({"name":"x","memory":{"words":2,"width":2},"march":"March C-",
            "schemes":["twm"],"classes":["saf"],"seeds":[0],
            "run":{"regions":"four"}})");
    FAIL() << "expected SpecValidationError";
  } catch (const SpecValidationError& e) {
    EXPECT_TRUE(has_error_at(e.errors(), "run.regions"));
  }
}

TEST(SpecJson, U64WordCountsRoundTripExactly) {
  // Huge-memory campaigns routinely exceed 32-bit word counts; a
  // double-based JSON number model would mangle these.
  auto s = valid_spec();
  for (const std::uint64_t words :
       {std::uint64_t{16777216}, std::uint64_t{1} << 36, (std::uint64_t{1} << 53) + 1}) {
    s.words = static_cast<std::size_t>(words);
    const std::string json = to_json(s, /*pretty=*/false);
    EXPECT_NE(json.find("\"words\":" + std::to_string(words)), std::string::npos) << json;
    EXPECT_EQ(spec_from_json(json).words, s.words);
  }
}

TEST(SpecContent, IdentityIgnoresRegionsAndCheckpointing) {
  // Region sharding is execution-transparent (verdicts only depend on
  // (fault, seed)), so cached cells are shared across region counts.
  const CampaignSpec base = valid_spec();
  CampaignSpec sharded = base;
  sharded.regions = 4;
  EXPECT_EQ(cell_key(sharded, base.schemes[0], base.classes[0]),
            cell_key(base, base.schemes[0], base.classes[0]));
}

// ---- deterministic class sampling ("saf@2048") ----------------------------

TEST(SpecEnums, SampledClassSpellingRoundTrips) {
  const auto sampled = parse_class("saf@2048");
  ASSERT_TRUE(sampled.has_value());
  EXPECT_EQ(sampled->kind, ClassKind::Saf);
  EXPECT_EQ(sampled->sample, 2048u);
  EXPECT_EQ(to_string(*sampled), "saf@2048");
  const auto scoped = parse_class("cfid:inter@1024");
  ASSERT_TRUE(scoped.has_value());
  EXPECT_EQ(scoped->scope, CfScope::InterWord);
  EXPECT_EQ(scoped->sample, 1024u);
  EXPECT_EQ(to_string(*scoped), "cfid:inter@1024");
  // A pre-sampling selector keeps its exact spelling (identity stability).
  EXPECT_EQ(to_string(ClassSel{ClassKind::Saf, CfScope::Both}), "saf");

  EXPECT_FALSE(parse_class("saf@0").has_value());
  EXPECT_FALSE(parse_class("saf@").has_value());
  EXPECT_FALSE(parse_class("saf@x").has_value());
  EXPECT_FALSE(parse_class("saf@12x").has_value());
  EXPECT_FALSE(parse_class("saf@4294967296").has_value());  // > UINT32_MAX
}

TEST(SpecClasses, SampledFaultListIsDeterministicAndBounded) {
  const ClassSel sel{ClassKind::Saf, CfScope::Both, 10};
  const auto a = build_fault_list(sel, 64, 4);
  const auto b = build_fault_list(sel, 64, 4);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cls, FaultClass::SAF);
    EXPECT_LT(a[i].victim.word, 64u);
    EXPECT_EQ(a[i].describe(), b[i].describe()) << "sampling must be deterministic";
  }
  // Requesting at least the exhaustive size degrades to the full list.
  const auto full = build_fault_list({ClassKind::Saf, CfScope::Both}, 4, 4);
  const auto capped = build_fault_list({ClassKind::Saf, CfScope::Both, 100000}, 4, 4);
  ASSERT_EQ(capped.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_EQ(capped[i].describe(), full[i].describe());
  // Sampled couplings respect the scope filter.
  const auto cfs = build_fault_list({ClassKind::CFid, CfScope::InterWord, 50}, 64, 4);
  ASSERT_EQ(cfs.size(), 50u);
  for (const Fault& f : cfs) {
    EXPECT_EQ(f.cls, FaultClass::CFid);
    EXPECT_NE(f.aggressor.word, f.victim.word);
  }
  // The sample changes the identity (different denotation -> different key).
  CampaignSpec s = valid_spec();
  EXPECT_NE(cell_key(s, s.schemes[0], {ClassKind::Saf, CfScope::Both, 10}),
            cell_key(s, s.schemes[0], {ClassKind::Saf, CfScope::Both}));
}

TEST(SpecJson, SampledClassRoundTripsThroughSpecJson) {
  auto s = valid_spec();
  s.classes = {{ClassKind::Saf, CfScope::Both, 2048},
               {ClassKind::CFid, CfScope::InterWord, 1024}};
  EXPECT_EQ(spec_from_json(to_json(s)), s);
  EXPECT_NE(to_json(s, /*pretty=*/false).find("saf@2048"), std::string::npos);
}

TEST(SpecContent, IdentityFoldsInTheEngineRevision) {
  const CampaignSpec s = valid_spec();
  const std::string identity = cell_identity_json(s, s.schemes[0], s.classes[0]);
  EXPECT_NE(identity.find(std::string(engine_revision())), std::string::npos);
  // The identity is itself canonical compact JSON — reparse + rewrite is a
  // fixed point (the cache's verification step depends on this).
  EXPECT_EQ(json_write(json_parse(identity), /*pretty=*/false), identity);
}

// ---- inline marches (march_ops) ----------------------------------------

CampaignSpec inline_spec() {
  auto s = valid_spec();
  s.march.clear();
  s.march_ops = {"any(w0)", "up(r0,w1)", "down(r1,w0)", "any(r0)"};
  return s;
}

TEST(SpecValidate, InlineMarchIsValidAndResolves) {
  const CampaignSpec s = inline_spec();
  EXPECT_TRUE(validate(s).empty());
  const MarchTest t = resolve_march(s);
  EXPECT_EQ(t.elements.size(), 4u);
  EXPECT_TRUE(is_consistent_bit_march(t));
}

TEST(SpecValidate, MarchAndInlineOpsAreMutuallyExclusive) {
  auto s = inline_spec();
  s.march = "March C-";
  const auto errors = validate(s);
  ASSERT_TRUE(has_error_at(errors, "march_ops"));
  EXPECT_NE(errors[0].message.find("pick one"), std::string::npos);
}

TEST(SpecValidate, NeitherMarchNorInlineOpsRejected) {
  auto s = inline_spec();
  s.march_ops.clear();
  const auto errors = validate(s);
  ASSERT_TRUE(has_error_at(errors, "march"));
  EXPECT_NE(errors[0].message.find("inline march_ops"), std::string::npos);
}

TEST(SpecValidate, BadInlineElementNamesItsIndex) {
  auto s = inline_spec();
  s.march_ops[1] = "up(bogus)";
  EXPECT_TRUE(has_error_at(validate(s), "march_ops[1]"));
}

TEST(SpecValidate, InconsistentInlineMarchNamesMarchOps) {
  auto s = inline_spec();
  s.march_ops = {"any(w0)", "up(r1)"};  // stale read — parses, but inconsistent
  const auto errors = validate(s);
  ASSERT_TRUE(has_error_at(errors, "march_ops"));
  EXPECT_NE(errors[0].message.find("consistent"), std::string::npos);
}

TEST(SpecJson, InlineMarchRoundTripsExactly) {
  const CampaignSpec s = inline_spec();
  EXPECT_EQ(spec_from_json(to_json(s)), s);
  // The library form is omitted when an inline march is present.
  const std::string compact = to_json(s, /*pretty=*/false);
  EXPECT_NE(compact.find("\"march_ops\":[\"any(w0)\""), std::string::npos);
  EXPECT_EQ(compact.find("\"march\":\""), std::string::npos);
}

TEST(SpecContent, InlineIdentityIsTheCanonicalBody) {
  const CampaignSpec s = inline_spec();
  const std::string identity = cell_identity_json(s, s.schemes[0], s.classes[0]);
  // The identity carries the canonical printed body, not the user spelling
  // — so every spelling of the same march shares a cache cell.
  EXPECT_NE(identity.find("{ any(w(0)); up(r(0),w(1)); down(r(1),w(0)); any(r(0)) }"),
            std::string::npos);
  auto variant = s;
  variant.march_ops = {"any(w(0))", "up( r0 , w1 )", "down(r1,w0)", "any(r0)"};
  EXPECT_EQ(cell_identity_json(variant, s.schemes[0], s.classes[0]), identity);
  // A body can never collide with a library name (bodies start with '{').
  EXPECT_NE(identity, cell_identity_json(valid_spec(), s.schemes[0], s.classes[0]));
}

}  // namespace
}  // namespace twm::api
