// Tests for the TOMT baseline model (Scheme 2 [13]): structure, calibrated
// complexity, transparency, and its concurrent detection paths.
#include <gtest/gtest.h>

#include "core/complexity.h"
#include "core/tomt.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Tomt, OpCountMatchesCalibratedComplexity) {
  for (unsigned w : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    EXPECT_EQ(tomt_test(w).op_count(), 7u + 8u * w) << "width " << w;
    EXPECT_EQ(measured_tomt(w).tcm, formula_tomt(w).tcm) << "width " << w;
  }
}

TEST(Tomt, TestIsTransparentSingleElement) {
  const MarchTest t = tomt_test(8);
  ASSERT_EQ(t.elements.size(), 1u);
  EXPECT_TRUE(t.is_transparent());
  EXPECT_TRUE(t.elements[0].begins_with_read());
}

TEST(Tomt, RejectsZeroWidth) { EXPECT_THROW(tomt_test(0), std::invalid_argument); }

TEST(Tomt, LedgerSizeValidated) {
  Memory mem(4, 8);
  EXPECT_THROW(run_tomt(mem, std::vector<bool>(3)), std::invalid_argument);
}

TEST(Tomt, FaultFreeRunIsTransparentAndSilent) {
  Rng rng(5);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();
  const auto ledger = make_parity_ledger(mem);

  const TomtResult res = run_tomt(mem, ledger);
  EXPECT_FALSE(res.detected);
  EXPECT_TRUE(mem.equals(snapshot));
  EXPECT_EQ(res.operations, (7u + 8u * 8u) * 8u);  // full sweep executed
}

TEST(Tomt, ParityLedgerCatchesPreexistingCorruption) {
  Rng rng(6);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto ledger = make_parity_ledger(mem);
  // Single-bit corruption after the ledger was established (a soft error).
  BitVec v = mem.peek(3);
  v.flip(2);
  auto contents = mem.snapshot();
  contents[3] = v;
  mem.load(contents);

  const TomtResult res = run_tomt(mem, ledger);
  EXPECT_TRUE(res.detected);
  EXPECT_EQ(res.fail_addr, 3u);
}

TEST(Tomt, ReadBackComparatorCatchesTf) {
  Rng rng(7);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto ledger = make_parity_ledger(mem);
  mem.inject(Fault::tf({5, 1}, Transition::Up));

  // The TF is activated by TOMT's own write sequence regardless of the
  // initial value of the cell (every bit sees both transitions).
  EXPECT_TRUE(run_tomt(mem, ledger).detected);
}

TEST(Tomt, ReadBackComparatorCatchesSaf) {
  Rng rng(8);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto ledger = make_parity_ledger(mem);
  mem.inject(Fault::saf({2, 7}, false));
  EXPECT_TRUE(run_tomt(mem, ledger).detected);
}

TEST(Tomt, DetectsIntraWordCfid) {
  Rng rng(9);
  Memory mem(4, 8);
  mem.fill_random(rng);
  const auto ledger = make_parity_ledger(mem);
  mem.inject(Fault::cfid({1, 0}, Transition::Up, {1, 5}, true));
  EXPECT_TRUE(run_tomt(mem, ledger).detected);
}

TEST(Tomt, StopsAtFirstFailingWord) {
  Rng rng(10);
  Memory mem(8, 4);
  mem.fill_random(rng);
  const auto ledger = make_parity_ledger(mem);
  mem.inject(Fault::saf({0, 0}, true));
  mem.inject(Fault::saf({6, 0}, true));
  const TomtResult res = run_tomt(mem, ledger);
  ASSERT_TRUE(res.detected);
  EXPECT_EQ(res.fail_addr, 0u);
  EXPECT_LT(res.operations, (7u + 8u * 4u) * 8u);  // aborted early
}

}  // namespace
}  // namespace twm
