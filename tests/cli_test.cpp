// Tests for the CLI core: every command's happy path, usage errors, fault
// specs, and exit codes.
#include <gtest/gtest.h>

#include <sstream>

#include "cli/cli.h"

namespace twm {
namespace {

struct CliRun {
  int rc;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int rc = run_cli(args, out, err);
  return {rc, out.str(), err.str()};
}

TEST(Cli, NoArgsPrintsUsage) {
  const auto r = cli({});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandPrintsUsage) {
  EXPECT_EQ(cli({"frobnicate"}).rc, 1);
}

TEST(Cli, ListShowsCatalog) {
  const auto r = cli({"list"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("March C-"), std::string::npos);
  EXPECT_NE(r.out.find("March G"), std::string::npos);
  EXPECT_NE(r.out.find("CF:full"), std::string::npos);
}

TEST(Cli, ShowPrintsMarchAndLint) {
  const auto r = cli({"show", "March U"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("March U: {"), std::string::npos);
  EXPECT_NE(r.out.find("lint:"), std::string::npos);
}

TEST(Cli, ShowUnknownMarchFailsCleanly) {
  const auto r = cli({"show", "March Z"});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, TransformDefaultsToTwm) {
  const auto r = cli({"transform", "March C-", "--width", "32"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("ATMarch"), std::string::npos);
  EXPECT_NE(r.out.find("TCM=35N TCP=21N"), std::string::npos);
}

TEST(Cli, TransformScheme1) {
  const auto r = cli({"transform", "March C-", "--width", "4", "--scheme", "s1"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("TCM=33N"), std::string::npos);
}

TEST(Cli, TransformSymmetric) {
  const auto r = cli({"transform", "March C-", "--width", "8", "--scheme", "sym"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("TCP=0"), std::string::npos);
}

TEST(Cli, TransformRejectsBadInput) {
  EXPECT_EQ(cli({"transform", "March C-"}).rc, 1);                              // no width
  EXPECT_EQ(cli({"transform", "March C-", "--width", "12"}).rc, 1);             // not 2^m
  EXPECT_EQ(cli({"transform", "March C-", "--width", "x"}).rc, 1);              // not a number
  EXPECT_EQ(cli({"transform", "March C-", "--width", "8", "--scheme", "zz"}).rc, 1);
  EXPECT_EQ(cli({"transform", "March C-", "--width"}).rc, 1);                   // missing value
}

TEST(Cli, ComplexityTable) {
  const auto r = cli({"complexity", "March U", "--width", "8"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("29N"), std::string::npos);  // the paper's worked example
  EXPECT_NE(r.out.find("scheme 2 [13]"), std::string::npos);
}

TEST(Cli, SimulateCleanMemory) {
  const auto r = cli({"simulate", "March C-", "--width", "8", "--words", "16"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("verdict: clean"), std::string::npos);
  EXPECT_NE(r.out.find("contents preserved: yes"), std::string::npos);
}

TEST(Cli, SimulateDetectsInjectedFault) {
  const auto r = cli({"simulate", "March C-", "--width", "8", "--words", "16", "--fault",
                      "tf:3.2=u"});
  EXPECT_EQ(r.rc, 2);
  EXPECT_NE(r.out.find("injected: TF(^) @w3.b2"), std::string::npos);
  EXPECT_NE(r.out.find("FAULT DETECTED"), std::string::npos);
}

TEST(Cli, SimulateMultipleFaults) {
  const auto r = cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault",
                      "saf:1.0=1", "--fault", "saf:2.7=0"});
  EXPECT_EQ(r.rc, 2);
}

TEST(Cli, SimulateRejectsBadFaultSpecs) {
  EXPECT_EQ(cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault", "bogus"}).rc,
            1);
  EXPECT_EQ(cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault",
                 "zap:1.0=1"}).rc,
            1);
  EXPECT_EQ(cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault",
                 "saf:9.0=1"}).rc,
            1);  // out of range
}

TEST(Cli, SimulateRetentionFaultWithMarchG) {
  const auto r = cli({"simulate", "March G", "--width", "8", "--words", "8", "--fault",
                      "ret:2.2=1", "--seed", "5"});
  // Detected unless the random content already holds the decay value at
  // both pauses — March G's complementary pauses make detection certain.
  EXPECT_EQ(r.rc, 2);
}

}  // namespace
}  // namespace twm
