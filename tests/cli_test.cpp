// Tests for the CLI core: every command's happy path, usage errors, fault
// specs, and exit codes.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/spec.h"
#include "cli/cli.h"

namespace twm {
namespace {

struct CliRun {
  int rc;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int rc = run_cli(args, out, err);
  return {rc, out.str(), err.str()};
}

// Writes `content` to a fresh file under the test temp dir and returns its
// path.
std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "twm_cli_" + name;
  std::ofstream f(path);
  f << content;
  return path;
}

TEST(Cli, NoArgsPrintsUsage) {
  const auto r = cli({});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandPrintsUsage) {
  EXPECT_EQ(cli({"frobnicate"}).rc, 1);
}

TEST(Cli, ListShowsCatalog) {
  const auto r = cli({"list"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("March C-"), std::string::npos);
  EXPECT_NE(r.out.find("March G"), std::string::npos);
  EXPECT_NE(r.out.find("CF:full"), std::string::npos);
}

TEST(Cli, ShowPrintsMarchAndLint) {
  const auto r = cli({"show", "March U"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("March U: {"), std::string::npos);
  EXPECT_NE(r.out.find("lint:"), std::string::npos);
}

TEST(Cli, ShowUnknownMarchFailsCleanly) {
  const auto r = cli({"show", "March Z"});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, TransformDefaultsToTwm) {
  const auto r = cli({"transform", "March C-", "--width", "32"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("ATMarch"), std::string::npos);
  EXPECT_NE(r.out.find("TCM=35N TCP=21N"), std::string::npos);
}

TEST(Cli, TransformScheme1) {
  const auto r = cli({"transform", "March C-", "--width", "4", "--scheme", "s1"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("TCM=33N"), std::string::npos);
}

TEST(Cli, TransformSymmetric) {
  const auto r = cli({"transform", "March C-", "--width", "8", "--scheme", "sym"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("TCP=0"), std::string::npos);
}

TEST(Cli, TransformRejectsBadInput) {
  EXPECT_EQ(cli({"transform", "March C-"}).rc, 1);                              // no width
  EXPECT_EQ(cli({"transform", "March C-", "--width", "12"}).rc, 1);             // not 2^m
  EXPECT_EQ(cli({"transform", "March C-", "--width", "x"}).rc, 1);              // not a number
  EXPECT_EQ(cli({"transform", "March C-", "--width", "8", "--scheme", "zz"}).rc, 1);
  EXPECT_EQ(cli({"transform", "March C-", "--width"}).rc, 1);                   // missing value
}

TEST(Cli, ComplexityTable) {
  const auto r = cli({"complexity", "March U", "--width", "8"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("29N"), std::string::npos);  // the paper's worked example
  EXPECT_NE(r.out.find("scheme 2 [13]"), std::string::npos);
}

TEST(Cli, SimulateCleanMemory) {
  const auto r = cli({"simulate", "March C-", "--width", "8", "--words", "16"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("verdict: clean"), std::string::npos);
  EXPECT_NE(r.out.find("contents preserved: yes"), std::string::npos);
}

TEST(Cli, SimulateDetectsInjectedFault) {
  const auto r = cli({"simulate", "March C-", "--width", "8", "--words", "16", "--fault",
                      "tf:3.2=u"});
  EXPECT_EQ(r.rc, 2);
  EXPECT_NE(r.out.find("injected: TF(^) @w3.b2"), std::string::npos);
  EXPECT_NE(r.out.find("FAULT DETECTED"), std::string::npos);
}

TEST(Cli, SimulateMultipleFaults) {
  const auto r = cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault",
                      "saf:1.0=1", "--fault", "saf:2.7=0"});
  EXPECT_EQ(r.rc, 2);
}

TEST(Cli, SimulateRejectsBadFaultSpecs) {
  EXPECT_EQ(cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault", "bogus"}).rc,
            1);
  EXPECT_EQ(cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault",
                 "zap:1.0=1"}).rc,
            1);
  EXPECT_EQ(cli({"simulate", "March C-", "--width", "8", "--words", "8", "--fault",
                 "saf:9.0=1"}).rc,
            1);  // out of range
}

TEST(Cli, SimulateRetentionFaultWithMarchG) {
  const auto r = cli({"simulate", "March G", "--width", "8", "--words", "8", "--fault",
                      "ret:2.2=1", "--seed", "5"});
  // Detected unless the random content already holds the decay value at
  // both pauses — March G's complementary pauses make detection certain.
  EXPECT_EQ(r.rc, 2);
}

TEST(Cli, CoverageDefaultsToPackedBackend) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("backend=packed"), std::string::npos);
  EXPECT_NE(r.out.find("SAF"), std::string::npos);
  EXPECT_NE(r.out.find("CFin"), std::string::npos);
  EXPECT_NE(r.out.find("faults/s"), std::string::npos);
}

TEST(Cli, CoverageBackendsReportIdenticalTables) {
  const std::vector<std::string> base{"coverage", "March C-", "--width", "4", "--words", "2",
                                      "--classes", "saf,tf,cfin", "--seeds", "0,3"};
  auto scalar = base;
  scalar.insert(scalar.end(), {"--backend", "scalar"});
  auto packed = base;
  packed.insert(packed.end(), {"--backend", "packed", "--threads", "2"});
  const auto rs = cli(scalar);
  const auto rp = cli(packed);
  ASSERT_EQ(rs.rc, 0);
  ASSERT_EQ(rp.rc, 0);
  // Identical coverage numbers, different header/footer: compare the table
  // body rows only.
  const auto body = [](const std::string& s) {
    return s.substr(s.find("| fault class"), s.rfind("+") - s.find("| fault class"));
  };
  EXPECT_EQ(body(rs.out), body(rp.out));
}

TEST(Cli, CoverageSchemeAndClassSelection) {
  const auto r = cli({"coverage", "March G", "--width", "4", "--words", "2", "--scheme", "ref",
                      "--classes", "ret", "--seeds", "0"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("RET"), std::string::npos);
  EXPECT_NE(r.out.find("SMarch+AMarch"), std::string::npos);
}

TEST(Cli, CoverageSchemeAllPrintsComparisonTable) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--scheme", "all",
                      "--classes", "saf,tf", "--seeds", "0"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("all schemes"), std::string::npos);
  // One row per scheme, one column per fault class.
  EXPECT_NE(r.out.find("| scheme"), std::string::npos);
  EXPECT_NE(r.out.find("SAF (16)"), std::string::npos);
  EXPECT_NE(r.out.find("TF (16)"), std::string::npos);
  EXPECT_NE(r.out.find("SMarch+AMarch (nontransparent)"), std::string::npos);
  EXPECT_NE(r.out.find("TWMarch (MISR)"), std::string::npos);
  EXPECT_NE(r.out.find("symmetric TWMarch"), std::string::npos);
  EXPECT_NE(r.out.find("TOMT model [13]"), std::string::npos);
}

TEST(Cli, CoverageSchemeAllAgreesWithSingleSchemeRun) {
  const auto all = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--scheme",
                        "all", "--classes", "saf", "--seeds", "0,1"});
  const auto one = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--scheme",
                        "tomt", "--classes", "saf", "--seeds", "0,1"});
  ASSERT_EQ(all.rc, 0);
  ASSERT_EQ(one.rc, 0);
  // The TOMT row of the sweep must contain the same "det/total (pct)" cell
  // the dedicated campaign reports.
  const auto row_at = all.out.find("TOMT model [13]");
  ASSERT_NE(row_at, std::string::npos);
  const std::string row = all.out.substr(row_at, all.out.find('\n', row_at) - row_at);
  const auto cell_at = one.out.find("| SAF");
  ASSERT_NE(cell_at, std::string::npos);
  const std::string cell_line = one.out.substr(cell_at, one.out.find('\n', cell_at) - cell_at);
  // Extract "x/16" from the single-scheme SAF line and require it in the row.
  const auto slash = cell_line.find("/16");
  ASSERT_NE(slash, std::string::npos);
  auto start = slash;
  while (start > 0 && std::isdigit(static_cast<unsigned char>(cell_line[start - 1]))) --start;
  EXPECT_NE(row.find(cell_line.substr(start, slash - start + 3)), std::string::npos)
      << "row: " << row << "\ncell: " << cell_line;
}

TEST(Cli, CoverageRejectsThreadsZero) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--threads", "0"});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("--threads"), std::string::npos);
}

TEST(Cli, CoverageRejectsGarbageSeeds) {
  for (const char* bad : {"x", "1,x", "-1", " 1", "2x", "1.5"}) {
    const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--seeds", bad});
    EXPECT_EQ(r.rc, 1) << "--seeds " << bad;
    EXPECT_NE(r.err.find("--seeds"), std::string::npos) << "--seeds " << bad;
  }
}

TEST(Cli, CoverageRejectsEmptySeeds) {
  for (const char* empty : {"", ","}) {
    const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--seeds",
                        empty});
    EXPECT_EQ(r.rc, 1) << "--seeds '" << empty << "'";
    EXPECT_NE(r.err.find("at least one seed"), std::string::npos);
  }
}

TEST(Cli, CoverageRejectsUnknownBackendWithMessage) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--backend",
                      "quantum"});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("unknown backend 'quantum'"), std::string::npos);
  EXPECT_NE(r.err.find("scalar|packed"), std::string::npos);
}

TEST(Cli, SimdPrintsSupportTableAndBest) {
  const auto r = cli({"simd"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("width"), std::string::npos);
  EXPECT_NE(r.out.find("512"), std::string::npos);
  EXPECT_NE(r.out.find("best: "), std::string::npos);
  // 64 lanes are always supported, so the best line carries a valid width.
  const bool best_valid = r.out.find("best: 64") != std::string::npos ||
                          r.out.find("best: 256") != std::string::npos ||
                          r.out.find("best: 512") != std::string::npos;
  EXPECT_TRUE(best_valid) << r.out;
}

TEST(Cli, CoverageReportsResolvedSimdWidth) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--classes",
                      "saf", "--simd", "64"});
  EXPECT_EQ(r.rc, 0) << r.err;
  EXPECT_NE(r.out.find("simd 64, forced"), std::string::npos) << r.out;
  const auto a = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--classes",
                      "saf", "--simd", "auto"});
  EXPECT_EQ(a.rc, 0) << a.err;
  EXPECT_NE(a.out.find("auto"), std::string::npos) << a.out;
  // The scalar backend has no lanes and prints no simd note.
  const auto s = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--classes",
                      "saf", "--backend", "scalar", "--simd", "64"});
  EXPECT_EQ(s.rc, 0) << s.err;
  EXPECT_EQ(s.out.find("simd"), std::string::npos) << s.out;
}

TEST(Cli, CoverageForcedWidthsMatchDefault) {
  // Forced widths the CPU supports must reproduce the auto table exactly;
  // a forced width it cannot execute must error cleanly (tested wherever
  // the host lacks one).
  const std::vector<std::string> base{"coverage", "March C-",  "--width", "4",
                                      "--words",  "4",         "--seeds", "0,1",
                                      "--classes", "saf,tf,af"};
  auto with_simd = [&](const std::string& w) {
    auto args = base;
    args.push_back("--simd");
    args.push_back(w);
    return cli(args);
  };
  const auto table_of = [](const std::string& out) {
    return out.substr(out.find('\n') + 1);  // drop the header line (names the width)
  };
  const auto ref = with_simd("64");
  ASSERT_EQ(ref.rc, 0) << ref.err;
  for (const std::string w : {"256", "512"}) {
    const auto r = with_simd(w);
    const auto probe = cli({"simd", "--json"});
    const bool supported =
        probe.out.find("{\"width\":" + w + ",\"supported\":true}") != std::string::npos;
    if (supported) {
      EXPECT_EQ(r.rc, 0) << r.err;
      // Same coverage numbers, fault counts, and totals at every width.
      EXPECT_EQ(table_of(r.out).substr(0, table_of(r.out).rfind(" faults in")),
                table_of(ref.out).substr(0, table_of(ref.out).rfind(" faults in")))
          << "--simd " << w;
    } else {
      EXPECT_EQ(r.rc, 1);
      EXPECT_NE(r.err.find("not supported"), std::string::npos) << r.err;
    }
  }
}

TEST(Cli, CoverageRejectsUnknownSimdWidth) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--simd", "128"});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("unknown simd width '128'"), std::string::npos);
  EXPECT_NE(r.err.find("auto|64|256|512"), std::string::npos);
}

TEST(Cli, CoverageRejectsUnknownScheduleAndCollapse) {
  const auto bad_schedule =
      cli({"coverage", "March C-", "--width", "4", "--words", "2", "--schedule", "sparse"});
  EXPECT_EQ(bad_schedule.rc, 1);
  EXPECT_NE(bad_schedule.err.find("unknown schedule 'sparse'"), std::string::npos);
  EXPECT_NE(bad_schedule.err.find("dense|repack"), std::string::npos);
  const auto bad_collapse =
      cli({"coverage", "March C-", "--width", "4", "--words", "2", "--collapse", "maybe"});
  EXPECT_EQ(bad_collapse.rc, 1);
  EXPECT_NE(bad_collapse.err.find("--collapse expects on|off"), std::string::npos);
}

TEST(Cli, CoverageScheduleModesReportIdenticalTables) {
  const std::vector<std::string> base{"coverage", "March C-", "--width", "4",
                                     "--words",   "4",        "--scheme", "all"};
  auto with_schedule = [&](const char* mode, const char* collapse) {
    auto args = base;
    args.insert(args.end(), {"--schedule", mode, "--collapse", collapse});
    return cli(args);
  };
  const auto dense = with_schedule("dense", "off");
  const auto repack = with_schedule("repack", "on");
  EXPECT_EQ(dense.rc, 0);
  EXPECT_EQ(repack.rc, 0);
  EXPECT_NE(dense.out.find("schedule=dense"), std::string::npos);
  EXPECT_NE(repack.out.find("schedule=repack"), std::string::npos);
  // The coverage cells (detected/total) must be identical; only the header
  // and the faults/s footer may differ.
  auto cells = [](const std::string& out) {
    std::vector<std::string> v;
    std::size_t pos = 0;
    while ((pos = out.find('/', pos)) != std::string::npos) {
      std::size_t a = pos;
      while (a > 0 && std::isdigit(static_cast<unsigned char>(out[a - 1]))) --a;
      std::size_t b = pos + 1;
      while (b < out.size() && std::isdigit(static_cast<unsigned char>(out[b]))) ++b;
      if (a < pos && b > pos + 1) v.push_back(out.substr(a, b - a));
      pos = b;
    }
    return v;
  };
  EXPECT_FALSE(cells(dense.out).empty());
  EXPECT_EQ(cells(dense.out), cells(repack.out));
}

TEST(Cli, SimdJsonEmitsMachineReadableProbe) {
  const auto r = cli({"simd", "--json"});
  EXPECT_EQ(r.rc, 0);
  EXPECT_NE(r.out.find("{\"widths\":["), std::string::npos);
  EXPECT_NE(r.out.find("{\"width\":64,\"supported\":true}"), std::string::npos);
  EXPECT_NE(r.out.find("\"best\":"), std::string::npos);
  // No table leaks into the JSON output.
  EXPECT_EQ(r.out.find("+--"), std::string::npos);
}

TEST(Cli, SpecCommandPrintsTheCoverageCommandsSpec) {
  const auto r = cli({"spec", "March C-", "--width", "4", "--words", "2", "--classes",
                      "saf,cfid:inter", "--scheme", "all", "--seeds", "0,7", "--threads", "3",
                      "--backend", "scalar", "--name", "bridge"});
  ASSERT_EQ(r.rc, 0) << r.err;
  const api::CampaignSpec spec = api::spec_from_json(r.out);
  EXPECT_EQ(spec.name, "bridge");
  EXPECT_EQ(spec.words, 2u);
  EXPECT_EQ(spec.width, 4u);
  EXPECT_EQ(spec.march, "March C-");
  EXPECT_EQ(spec.schemes.size(), std::size(kAllSchemes));
  EXPECT_EQ(spec.classes,
            (std::vector<api::ClassSel>{{api::ClassKind::Saf, CfScope::Both},
                                        {api::ClassKind::CFid, CfScope::InterWord}}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{0, 7}));
  EXPECT_EQ(spec.backend, CoverageBackend::Scalar);
  EXPECT_EQ(spec.threads, 3u);
}

TEST(Cli, SpecCommandRejectsInvalidFieldsWithPaths) {
  const auto r = cli({"spec", "March Z", "--width", "4", "--words", "2"});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("error: march:"), std::string::npos);
  EXPECT_NE(r.err.find("March Z"), std::string::npos);
}

TEST(Cli, RunExecutesASpecFileThroughEverySink) {
  const auto spec = cli({"spec", "March C-", "--width", "4", "--words", "2", "--classes",
                         "saf", "--seeds", "0"});
  ASSERT_EQ(spec.rc, 0) << spec.err;
  const std::string path = write_temp("run_spec.json", spec.out);

  const auto table = cli({"run", path});
  EXPECT_EQ(table.rc, 0) << table.err;
  EXPECT_NE(table.out.find("coverage: March C-, N=2, B=4"), std::string::npos);
  EXPECT_NE(table.out.find("| SAF"), std::string::npos);

  const auto jsonl = cli({"run", path, "--sink", "jsonl"});
  EXPECT_EQ(jsonl.rc, 0) << jsonl.err;
  EXPECT_EQ(jsonl.out.rfind("{\"type\":\"campaign_begin\"", 0), 0u) << jsonl.out;
  EXPECT_NE(jsonl.out.find("{\"type\":\"unit\""), std::string::npos);
  EXPECT_NE(jsonl.out.find("{\"type\":\"campaign_end\""), std::string::npos);

  const auto csv = cli({"run", path, "--sink", "csv"});
  EXPECT_EQ(csv.rc, 0) << csv.err;
  EXPECT_EQ(csv.out.rfind("campaign,scheme,class,fault,", 0), 0u);

  // --out writes the stream to a file instead of stdout.
  const std::string out_path = ::testing::TempDir() + "twm_cli_run_out.jsonl";
  const auto filed = cli({"run", path, "--sink", "jsonl", "--out", out_path});
  EXPECT_EQ(filed.rc, 0) << filed.err;
  EXPECT_TRUE(filed.out.empty());
  std::ifstream written(out_path);
  std::string first_line;
  std::getline(written, first_line);
  EXPECT_EQ(first_line.rfind("{\"type\":\"campaign_begin\"", 0), 0u);
  std::remove(out_path.c_str());
}

TEST(Cli, RunCoverageParityOnAggregates) {
  // The spec-vs-legacy contract the CI job enforces, in-process: the same
  // campaign driven through `run` (jsonl cells) and through the legacy
  // `coverage` table must report identical detected/total counts.
  const std::vector<std::string> flags{"March C-", "--width", "4", "--words", "2",
                                       "--classes", "saf,tf", "--seeds", "0,1",
                                       "--scheme",  "twm"};
  auto spec_args = flags;
  spec_args.insert(spec_args.begin(), "spec");
  const auto spec = cli(spec_args);
  ASSERT_EQ(spec.rc, 0) << spec.err;
  const std::string path = write_temp("parity_spec.json", spec.out);
  const auto jsonl = cli({"run", path, "--sink", "jsonl"});
  ASSERT_EQ(jsonl.rc, 0) << jsonl.err;

  auto coverage_args = flags;
  coverage_args.insert(coverage_args.begin(), "coverage");
  const auto table = cli(coverage_args);
  ASSERT_EQ(table.rc, 0) << table.err;

  // jsonl end record: {"scheme":"twm","class":"saf","total":16,"detected_all":16,...}
  for (const char* cls : {"saf", "tf"}) {
    const std::string key = std::string("\"class\":\"") + cls + "\",\"total\":16,\"detected_all\":";
    const auto at = jsonl.out.find(key);
    ASSERT_NE(at, std::string::npos) << cls << "\n" << jsonl.out;
    const std::string detected =
        jsonl.out.substr(at + key.size(),
                         jsonl.out.find(',', at + key.size()) - at - key.size());
    // The coverage table prints the same cell as "detected/total".
    EXPECT_NE(table.out.find(detected + "/16"), std::string::npos)
        << cls << ": detected=" << detected << "\n" << table.out;
  }
}

TEST(Cli, RunRejectsMissingFileUnknownSinkAndBadSpec) {
  EXPECT_EQ(cli({"run"}).rc, 1);
  const auto missing = cli({"run", "/nonexistent/spec.json"});
  EXPECT_EQ(missing.rc, 1);
  EXPECT_NE(missing.err.find("cannot read"), std::string::npos);

  const std::string good = write_temp(
      "good_spec.json",
      R"({"memory":{"words":2,"width":4},"march":"March C-","schemes":["twm"],
          "classes":["saf"],"seeds":[0]})");
  const auto bad_sink = cli({"run", good, "--sink", "xml"});
  EXPECT_EQ(bad_sink.rc, 1);
  EXPECT_NE(bad_sink.err.find("unknown sink 'xml'"), std::string::npos);

  // A rejected invocation must not truncate a previous run's --out file.
  const std::string precious = write_temp("precious.jsonl", "previous results\n");
  const auto clobber = cli({"run", good, "--sink", "xml", "--out", precious});
  EXPECT_EQ(clobber.rc, 1);
  std::ifstream still_there(precious);
  std::string content;
  std::getline(still_there, content);
  EXPECT_EQ(content, "previous results");

  const std::string malformed = write_temp("malformed.json", "{\"memory\": ");
  const auto parse_fail = cli({"run", malformed});
  EXPECT_EQ(parse_fail.rc, 1);
  EXPECT_NE(parse_fail.err.find("error:"), std::string::npos);

  const std::string invalid = write_temp(
      "invalid_spec.json",
      R"({"memory":{"words":0,"width":4},"march":"March C-","schemes":["twm"],
          "classes":["saf"],"seeds":[0]})");
  const auto invalid_run = cli({"run", invalid});
  EXPECT_EQ(invalid_run.rc, 1);
  EXPECT_NE(invalid_run.err.find("memory.words"), std::string::npos);
}

TEST(Cli, RunExecutesBatchSpecs) {
  const std::string path = write_temp(
      "batch_spec.json",
      R"([{"name":"a","memory":{"words":2,"width":2},"march":"March C-",
           "schemes":["twm"],"classes":["saf"],"seeds":[0]},
          {"name":"b","memory":{"words":2,"width":2},"march":"March C-",
           "schemes":["tomt"],"classes":["tf"],"seeds":[0]}])");
  const auto r = cli({"run", path, "--sink", "jsonl"});
  ASSERT_EQ(r.rc, 0) << r.err;
  EXPECT_NE(r.out.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(r.out.find("\"name\":\"b\""), std::string::npos);
  // Two campaigns, two begin/end pairs.
  std::size_t begins = 0, pos = 0;
  while ((pos = r.out.find("\"type\":\"campaign_begin\"", pos)) != std::string::npos) {
    ++begins;
    pos += 1;
  }
  EXPECT_EQ(begins, 2u);
}

TEST(Cli, CoverageAcceptsScopedCouplingClasses) {
  const auto r = cli({"coverage", "March C-", "--width", "4", "--words", "2", "--classes",
                      "cfid:inter,cfid:intra", "--seeds", "0"});
  EXPECT_EQ(r.rc, 0) << r.err;
  EXPECT_NE(r.out.find("CFid inter"), std::string::npos);
  EXPECT_NE(r.out.find("CFid intra"), std::string::npos);
}

TEST(Cli, RunExecutesInlineMarchSpec) {
  const std::string path = write_temp(
      "inline_spec.json",
      R"json({"name":"inline","memory":{"words":2,"width":4},
          "march_ops":["any(w0)","up(r0,w1)","down(r1,w0)","any(r0)"],
          "schemes":["twm"],"classes":["saf"],"seeds":[0]})json");
  const auto r = cli({"run", path});
  ASSERT_EQ(r.rc, 0) << r.err;
  // The table header names the march by its canonical printed body.
  EXPECT_NE(r.out.find("coverage: { any(w(0)); up(r(0),w(1)); down(r(1),w(0)); any(r(0)) }"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("| SAF"), std::string::npos);

  // Inline and library spellings of the same march report identical cells.
  const std::string c_minus = write_temp(
      "inline_cminus.json",
      R"json({"name":"i","memory":{"words":2,"width":4},
          "march_ops":["any(w0)","up(r0,w1)","up(r1,w0)","down(r0,w1)","down(r1,w0)","any(r0)"],
          "schemes":["twm"],"classes":["saf","tf"],"seeds":[0,1]})json");
  const auto inline_run = cli({"run", c_minus, "--sink", "csv"});
  ASSERT_EQ(inline_run.rc, 0) << inline_run.err;
  const std::string lib = write_temp(
      "lib_cminus.json",
      R"({"name":"i","memory":{"words":2,"width":4},"march":"March C-",
          "schemes":["twm"],"classes":["saf","tf"],"seeds":[0,1]})");
  const auto lib_run = cli({"run", lib, "--sink", "csv"});
  ASSERT_EQ(lib_run.rc, 0) << lib_run.err;
  EXPECT_EQ(inline_run.out, lib_run.out);
}

TEST(Cli, RunRejectsBadInlineMarch) {
  const std::string path = write_temp(
      "bad_inline.json",
      R"json({"name":"x","memory":{"words":2,"width":4},
          "march_ops":["any(w0)","up(bogus)"],
          "schemes":["twm"],"classes":["saf"],"seeds":[0]})json");
  const auto r = cli({"run", path});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("march_ops[1]"), std::string::npos) << r.err;
}

// ---- explore -----------------------------------------------------------

std::string tiny_dse(const std::string& classes = R"(["saf"])",
                     const std::string& search = R"({"population":4,"rounds":1,"seed":1})") {
  return std::string(R"({"name":"cli-dse","memory":{"words":2,"width":4},)") +
         R"("objective":{"scheme":"twm","classes":)" + classes + "}," +
         R"("seeds":[0],"search":)" + search + "}";
}

TEST(Cli, ExploreRunsASmallSearch) {
  const std::string path = write_temp("dse_ok.json", tiny_dse());
  const auto r = cli({"explore", path});
  ASSERT_EQ(r.rc, 0) << r.err;
  EXPECT_NE(r.out.find("exploring 'cli-dse'"), std::string::npos);
  EXPECT_NE(r.out.find("round 1/1"), std::string::npos);
  EXPECT_NE(r.out.find("Pareto front"), std::string::npos);
  EXPECT_NE(r.out.find("| SAF"), std::string::npos);
}

TEST(Cli, ExploreRejectsUnknownObjectiveClass) {
  const std::string path = write_temp("dse_bad_class.json", tiny_dse(R"(["saf","warp"])"));
  const auto r = cli({"explore", path});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("objective.classes[1]"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("warp"), std::string::npos) << r.err;
}

TEST(Cli, ExploreRejectsDegeneratePopulation) {
  const std::string path = write_temp(
      "dse_pop.json", tiny_dse(R"(["saf"])", R"({"population":1,"rounds":1,"seed":1})"));
  const auto r = cli({"explore", path});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("search.population"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("two parents"), std::string::npos) << r.err;
}

TEST(Cli, ExploreRejectsMalformedResumeState) {
  const std::string spec_path = write_temp("dse_resume_spec.json", tiny_dse());
  const std::string state_path = write_temp("dse_state.json", "not json at all");
  const auto r = cli({"explore", spec_path, "--resume", state_path});
  EXPECT_EQ(r.rc, 1);
  EXPECT_NE(r.err.find("not a search state"), std::string::npos) << r.err;

  // A state for a different spec is rejected, not silently restarted.
  const auto fresh = cli({"explore", spec_path, "--resume", state_path + ".new"});
  ASSERT_EQ(fresh.rc, 0) << fresh.err;
  const std::string other = write_temp("dse_other.json", tiny_dse(R"(["tf"])"));
  const auto mismatch = cli({"explore", other, "--resume", state_path + ".new"});
  EXPECT_EQ(mismatch.rc, 1);
  EXPECT_NE(mismatch.err.find("identity mismatch"), std::string::npos) << mismatch.err;
  std::remove((state_path + ".new").c_str());
}

TEST(Cli, ExploreUsageAndMissingFile) {
  EXPECT_EQ(cli({"explore"}).rc, 1);
  const auto missing = cli({"explore", "/nonexistent/dse.json"});
  EXPECT_EQ(missing.rc, 1);
  EXPECT_NE(missing.err.find("cannot read"), std::string::npos);
}

TEST(Cli, CoverageRejectsBadInput) {
  EXPECT_EQ(cli({"coverage", "March C-"}).rc, 1);  // no geometry
  EXPECT_EQ(cli({"coverage", "March C-", "--width", "4", "--words", "2", "--backend",
                 "quantum"}).rc,
            1);
  EXPECT_EQ(cli({"coverage", "March C-", "--width", "4", "--words", "2", "--scheme", "zz"}).rc,
            1);
  EXPECT_EQ(cli({"coverage", "March C-", "--width", "4", "--words", "2", "--classes", "bogus"}).rc,
            1);
  EXPECT_EQ(cli({"coverage", "March C-", "--width", "4", "--words", "2", "--seeds", "x"}).rc, 1);
}

}  // namespace
}  // namespace twm
