// Unit tests for the fault-injecting memory simulator: each fault model's
// activation/observation behaviour, plus fault-free integrity properties.
#include <gtest/gtest.h>

#include "memsim/memory.h"
#include "util/rng.h"

namespace twm {
namespace {

BitVec bv(const std::string& s) { return BitVec::from_string(s); }

TEST(Memory, GeometryValidation) {
  EXPECT_THROW(Memory(0, 8), std::invalid_argument);
  EXPECT_THROW(Memory(8, 0), std::invalid_argument);
}

TEST(Memory, FaultFreeReadsBackWrites) {
  Memory m(16, 8);
  Rng rng(3);
  std::vector<BitVec> golden(16, BitVec::zeros(8));
  for (int i = 0; i < 200; ++i) {
    const std::size_t a = rng.next_below(16);
    const BitVec d = rng.next_word(8);
    m.write(a, d);
    golden[a] = d;
  }
  for (std::size_t a = 0; a < 16; ++a) EXPECT_EQ(m.read(a), golden[a]);
}

TEST(Memory, OpCountMetersPortTraffic) {
  Memory m(4, 4);
  EXPECT_EQ(m.op_count(), 0u);
  m.write(0, bv("1010"));
  m.read(0);
  m.read(1);
  EXPECT_EQ(m.op_count(), 3u);
  m.reset_op_count();
  EXPECT_EQ(m.op_count(), 0u);
}

TEST(Memory, WriteWidthMismatchThrows) {
  Memory m(4, 4);
  EXPECT_THROW(m.write(0, BitVec::zeros(8)), std::invalid_argument);
}

TEST(Memory, LoadValidates) {
  Memory m(2, 4);
  EXPECT_THROW(m.load({bv("0000")}), std::invalid_argument);           // word count
  EXPECT_THROW(m.load({bv("0000"), bv("00000")}), std::invalid_argument);  // width
}

TEST(Memory, InjectValidatesAddresses) {
  Memory m(2, 4);
  EXPECT_THROW(m.inject(Fault::saf({2, 0}, true)), std::out_of_range);
  EXPECT_THROW(m.inject(Fault::saf({0, 4}, true)), std::out_of_range);
  EXPECT_THROW(m.inject(Fault::cfin({0, 1}, Transition::Up, {0, 1})), std::invalid_argument);
}

// --- SAF -----------------------------------------------------------------

TEST(Memory, Saf1ForcesOneOnInjectAndWrite) {
  Memory m(2, 4);
  m.inject(Fault::saf({0, 2}, true));
  EXPECT_TRUE(m.read(0).get(2));  // forced at injection
  m.write(0, bv("0000"));
  EXPECT_EQ(m.read(0).to_string(), "0100");  // bit 2 stuck at 1
  m.write(1, bv("0000"));
  EXPECT_EQ(m.read(1).to_string(), "0000");  // other word unaffected
}

TEST(Memory, Saf0SurvivesLoad) {
  Memory m(1, 4);
  m.inject(Fault::saf({0, 0}, false));
  m.load({bv("1111")});
  EXPECT_EQ(m.read(0).to_string(), "1110");
}

// --- TF ------------------------------------------------------------------

TEST(Memory, TfUpBlocksRisingOnly) {
  Memory m(1, 4);
  m.inject(Fault::tf({0, 1}, Transition::Up));
  m.write(0, bv("0000"));
  m.write(0, bv("1111"));
  EXPECT_EQ(m.read(0).to_string(), "1101");  // bit 1 failed 0->1
  // A cell already at 1 can fall and stay fallen.
  m.load({bv("1111")});
  m.write(0, bv("0000"));
  EXPECT_EQ(m.read(0).to_string(), "0000");
}

TEST(Memory, TfDownBlocksFallingOnly) {
  Memory m(1, 4);
  m.inject(Fault::tf({0, 1}, Transition::Down));
  m.load({bv("1111")});
  m.write(0, bv("0000"));
  EXPECT_EQ(m.read(0).to_string(), "0010");  // bit 1 failed 1->0
  m.load({bv("0000")});
  m.write(0, bv("1111"));
  EXPECT_EQ(m.read(0).to_string(), "1111");  // rising works
}

TEST(Memory, TfNoEffectWithoutTransition) {
  Memory m(1, 4);
  m.inject(Fault::tf({0, 0}, Transition::Up));
  m.write(0, bv("0000"));
  m.write(0, bv("0000"));
  EXPECT_EQ(m.read(0).to_string(), "0000");
}

// --- CFid ------------------------------------------------------------------

TEST(Memory, CfidInterWordTriggersOnMatchingTransition) {
  Memory m(2, 4);
  // Aggressor w0.b0 rising forces victim w1.b3 to 1.
  m.inject(Fault::cfid({0, 0}, Transition::Up, {1, 3}, true));
  m.write(1, bv("0000"));
  m.write(0, bv("0000"));
  m.write(0, bv("0001"));  // 0->1 on aggressor
  EXPECT_EQ(m.read(1).to_string(), "1000");
  // Falling transition does not trigger.
  m.write(1, bv("0000"));
  m.write(0, bv("0000"));
  EXPECT_EQ(m.read(1).to_string(), "0000");
}

TEST(Memory, CfidIntraWordSameWrite) {
  Memory m(1, 4);
  // Bit 0 rising forces bit 2 to 0 within the same word.
  m.inject(Fault::cfid({0, 0}, Transition::Up, {0, 2}, false));
  m.write(0, bv("0000"));
  m.write(0, bv("1111"));  // bit 0 rises; bit 2's written 1 is overridden
  EXPECT_EQ(m.read(0).to_string(), "1011");
}

TEST(Memory, CfidNoTriggerWhenAggressorStable) {
  Memory m(2, 4);
  m.inject(Fault::cfid({0, 0}, Transition::Up, {1, 0}, true));
  m.write(0, bv("0001"));  // initial 0 -> 1: triggers once
  m.write(1, bv("0000"));
  m.write(0, bv("0001"));  // 1 -> 1: no transition
  EXPECT_EQ(m.read(1).to_string(), "0000");
}

// --- CFin ------------------------------------------------------------------

TEST(Memory, CfinInvertsVictim) {
  Memory m(2, 2);
  m.inject(Fault::cfin({0, 0}, Transition::Down, {1, 1}));
  m.load({bv("01"), bv("00")});
  m.write(0, bv("00"));  // aggressor falls
  EXPECT_EQ(m.read(1).to_string(), "10");
  m.write(0, bv("01"));  // rising: no effect for a Down trigger
  EXPECT_EQ(m.read(1).to_string(), "10");
  m.write(0, bv("00"));  // falls again: inverts back
  EXPECT_EQ(m.read(1).to_string(), "00");
}

// --- CFst ------------------------------------------------------------------

TEST(Memory, CfstForcesWhileAggressorInState) {
  Memory m(2, 2);
  // While w0.b0 == 1, victim w1.b0 is forced to 0.
  m.inject(Fault::cfst({0, 0}, true, {1, 0}, false));
  m.write(0, bv("01"));
  m.write(1, bv("11"));  // write of 1 into the victim is overridden
  EXPECT_EQ(m.read(1).to_string(), "10");
  m.write(0, bv("00"));  // condition released
  m.write(1, bv("11"));
  EXPECT_EQ(m.read(1).to_string(), "11");
}

TEST(Memory, CfstEnforcedAtLoad) {
  Memory m(2, 2);
  m.inject(Fault::cfst({0, 0}, true, {1, 1}, true));
  m.load({bv("01"), bv("00")});
  EXPECT_EQ(m.peek(1).to_string(), "10");
}

TEST(Memory, CfstIntraWord) {
  Memory m(1, 4);
  // While bit 3 == 0, bit 0 forced to 1.
  m.inject(Fault::cfst({0, 3}, false, {0, 0}, true));
  m.write(0, bv("0000"));
  EXPECT_EQ(m.read(0).to_string(), "0001");
  m.write(0, bv("1000"));  // aggressor leaves state 0
  EXPECT_EQ(m.read(0).to_string(), "1000");
}

// --- multiple faults ---------------------------------------------------

TEST(Memory, SafDominatesCoupling) {
  Memory m(2, 2);
  m.inject(Fault::cfid({0, 0}, Transition::Up, {1, 0}, true));
  m.inject(Fault::saf({1, 0}, false));
  m.write(0, bv("00"));
  m.write(0, bv("01"));
  EXPECT_EQ(m.read(1).to_string(), "00");  // stuck-at wins over CFid
}

TEST(Memory, FaultDescribeStrings) {
  EXPECT_EQ(Fault::saf({1, 2}, true).describe(), "SAF(1) @w1.b2");
  EXPECT_EQ(Fault::tf({0, 0}, Transition::Down).describe(), "TF(v) @w0.b0");
  const auto cf = Fault::cfid({0, 1}, Transition::Up, {0, 3}, false);
  EXPECT_EQ(cf.describe(), "CFid<^;0> w0.b1->w0.b3 [intra]");
  EXPECT_TRUE(cf.intra_word());
  const auto inter = Fault::cfst({0, 0}, true, {1, 0}, true);
  EXPECT_FALSE(inter.intra_word());
  EXPECT_EQ(inter.describe(), "CFst<1;1> w0.b0->w1.b0 [inter]");
}

TEST(Memory, ClearFaultsStopsInjection) {
  Memory m(1, 2);
  m.inject(Fault::saf({0, 0}, true));
  m.clear_faults();
  m.write(0, bv("00"));
  EXPECT_EQ(m.read(0).to_string(), "00");
}

// --- address-decoder faults (AFna / AFaw) ------------------------------

TEST(Memory, AfNoAccessLosesWritesAndReadsFloatingBus) {
  Memory m(2, 2);
  m.write(0, bv("11"));
  m.write(1, bv("10"));
  m.inject(Fault::af_no_access(0));
  EXPECT_EQ(m.read(0).to_string(), "00") << "reads float to zero";
  EXPECT_EQ(m.peek(0).to_string(), "11") << "the cells themselves keep their data";
  m.write(0, bv("01"));
  EXPECT_EQ(m.peek(0).to_string(), "11") << "the write is lost";
  EXPECT_EQ(m.read(1).to_string(), "10") << "other addresses are unaffected";
}

TEST(Memory, AfAliasWritesThroughAndMergesReadsWiredAnd) {
  Memory m(3, 2);
  m.write(1, bv("10"));
  m.inject(Fault::af_alias(0, 1));
  m.write(0, bv("11"));
  EXPECT_EQ(m.peek(0).to_string(), "11");
  EXPECT_EQ(m.peek(1).to_string(), "11") << "the write also hits the alias target";
  m.write(1, bv("01"));
  EXPECT_EQ(m.read(0).to_string(), "01") << "read merges 11 AND 01";
  EXPECT_EQ(m.read(1).to_string(), "01") << "the target itself reads normally";
  EXPECT_EQ(m.read(2).to_string(), "00");
}

TEST(Memory, AfInjectValidation) {
  Memory m(2, 2);
  EXPECT_THROW(m.inject(Fault::af_no_access(2)), std::out_of_range);
  EXPECT_THROW(m.inject(Fault::af_alias(0, 2)), std::out_of_range);
  EXPECT_THROW(m.inject(Fault::af_alias(1, 1)), std::invalid_argument);
  m.inject(Fault::af_alias(0, 1));
  m.clear_faults();
  m.write(0, bv("10"));
  EXPECT_EQ(m.read(0).to_string(), "10") << "clear_faults removes the decoder fault";
  EXPECT_EQ(m.peek(1).to_string(), "00");
}

// Property: with no faults, load + snapshot round-trips any contents.
TEST(Memory, SnapshotRoundTrip) {
  Memory m(8, 16);
  Rng rng(9);
  std::vector<BitVec> contents;
  for (int i = 0; i < 8; ++i) contents.push_back(rng.next_word(16));
  m.load(contents);
  EXPECT_TRUE(m.equals(contents));
  EXPECT_EQ(m.snapshot(), contents);
}

}  // namespace
}  // namespace twm
