// Tests for fault localization and the detect -> diagnose -> repair ->
// retest (BIST + BISR) flow.
#include <gtest/gtest.h>

#include "analysis/diagnosis.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/repair.h"
#include "util/rng.h"

namespace twm {
namespace {

TwmResult twm8() { return twm_transform(march_by_name("March C-"), 8); }

TEST(Diagnosis, CleanMemoryYieldsNoFinding) {
  Rng rng(1);
  Memory mem(8, 8);
  mem.fill_random(rng);
  const auto r = twm8();
  const Diagnosis d = diagnose_transparent(mem, r.twmarch, r.prediction);
  EXPECT_FALSE(d.fault_found);
  EXPECT_EQ(d.mismatch_count, 0u);
}

TEST(Diagnosis, LocalizesSafToWordAndBit) {
  const auto r = twm8();
  for (std::size_t word : {0u, 3u, 7u}) {
    for (unsigned bit : {0u, 5u}) {
      Rng rng(2);
      Memory mem(8, 8);
      mem.fill_random(rng);
      mem.inject(Fault::saf({word, bit}, !mem.peek(word).get(bit)));
      const Diagnosis d = diagnose_transparent(mem, r.twmarch, r.prediction);
      ASSERT_TRUE(d.fault_found);
      EXPECT_EQ(d.suspect_word, word);
      EXPECT_EQ(d.bit_syndrome.popcount(), 1u);
      EXPECT_TRUE(d.bit_syndrome.get(bit));
    }
  }
}

TEST(Diagnosis, LocalizesTf) {
  const auto r = twm8();
  Rng rng(3);
  Memory mem(16, 8);
  mem.fill_random(rng);
  mem.inject(Fault::tf({11, 6}, Transition::Up));
  const Diagnosis d = diagnose_transparent(mem, r.twmarch, r.prediction);
  ASSERT_TRUE(d.fault_found);
  EXPECT_EQ(d.suspect_word, 11u);
  EXPECT_TRUE(d.bit_syndrome.get(6));
}

TEST(Diagnosis, LocationPointsAtARealReadOp) {
  const auto r = twm8();
  Rng rng(4);
  Memory mem(8, 8);
  mem.fill_random(rng);
  mem.inject(Fault::saf({5, 0}, !mem.peek(5).get(0)));
  const Diagnosis d = diagnose_transparent(mem, r.twmarch, r.prediction);
  ASSERT_TRUE(d.fault_found);
  const auto& elem = r.twmarch.elements.at(d.location.element);
  ASSERT_LT(d.location.op_index, elem.ops.size());
  EXPECT_TRUE(elem.ops[d.location.op_index].is_read());
  EXPECT_EQ(d.location.addr, d.suspect_word);
}

TEST(Diagnosis, LocateReadMapsWholeStream) {
  const auto r = twm8();
  const std::size_t words = 4;
  const std::size_t stream_len = r.twmarch.read_count() * words;
  std::size_t count = 0;
  for (std::size_t i = 0; i < stream_len; ++i) {
    const OpLocation loc = locate_read(r.twmarch, i, words);
    EXPECT_LT(loc.element, r.twmarch.elements.size());
    EXPECT_LT(loc.addr, words);
    ++count;
  }
  EXPECT_EQ(count, stream_len);
  EXPECT_THROW(locate_read(r.twmarch, stream_len, words), std::out_of_range);
}

TEST(Diagnosis, LocateReadRespectsDescendingOrder) {
  // Element 2 of TSMarch C- runs down(); its first visited address must be
  // the highest one.
  const auto r = twm8();
  // Find the first read of the first Down element.
  std::size_t stream_index = 0;
  for (std::size_t e = 0; e < r.twmarch.elements.size(); ++e) {
    if (r.twmarch.elements[e].order == AddrOrder::Down) {
      const OpLocation loc = locate_read(r.twmarch, stream_index, 4);
      EXPECT_EQ(loc.element, e);
      EXPECT_EQ(loc.addr, 3u);
      return;
    }
    stream_index += r.twmarch.elements[e].read_count() * 4;
  }
  FAIL() << "March C- has a Down element";
}

// --- repairable memory ---------------------------------------------------

TEST(Repair, GeometryAndTranslation) {
  RepairableMemory mem(8, 2, 8);
  EXPECT_EQ(mem.num_words(), 8u);
  EXPECT_EQ(mem.physical().num_words(), 10u);
  EXPECT_EQ(mem.spares_left(), 2u);
  EXPECT_FALSE(mem.is_remapped(3));
  EXPECT_THROW(mem.repair(8), std::out_of_range);
}

TEST(Repair, RemapPreservesContent) {
  RepairableMemory mem(4, 1, 8);
  const BitVec d = BitVec::from_string("10101010");
  mem.write(2, d);
  ASSERT_TRUE(mem.repair(2));
  EXPECT_TRUE(mem.is_remapped(2));
  EXPECT_EQ(mem.read(2), d);
  EXPECT_EQ(mem.spares_left(), 0u);
  EXPECT_FALSE(mem.repair(3));  // out of spares
}

// The full BIST + BISR loop: detect, diagnose, remap, retest clean.
TEST(Repair, DetectDiagnoseRepairRetest) {
  const auto r = twm8();
  RepairableMemory mem(8, 2, 8);
  Rng rng(5);
  for (std::size_t a = 0; a < 8; ++a) mem.write(a, rng.next_word(8));

  // A hard defect develops in physical word 6.
  mem.physical().inject(Fault::saf({6, 3}, true));

  Diagnosis d = diagnose_transparent(mem, r.twmarch, r.prediction);
  ASSERT_TRUE(d.fault_found);
  EXPECT_EQ(d.suspect_word, 6u);

  ASSERT_TRUE(mem.repair(d.suspect_word));
  d = diagnose_transparent(mem, r.twmarch, r.prediction);
  EXPECT_FALSE(d.fault_found) << "defect must be out of service after remap";
}

// A defective spare is caught by the retest and repaired again.
TEST(Repair, DefectiveSpareCaughtOnRetest) {
  const auto r = twm8();
  RepairableMemory mem(8, 2, 8);
  Rng rng(6);
  for (std::size_t a = 0; a < 8; ++a) mem.write(a, rng.next_word(8));

  mem.physical().inject(Fault::saf({2, 1}, true));   // logical word 2
  mem.physical().inject(Fault::saf({8, 4}, false));  // first spare is bad too

  Diagnosis d = diagnose_transparent(mem, r.twmarch, r.prediction);
  ASSERT_TRUE(d.fault_found);
  ASSERT_TRUE(mem.repair(d.suspect_word));  // lands on the bad spare

  d = diagnose_transparent(mem, r.twmarch, r.prediction);
  ASSERT_TRUE(d.fault_found);
  EXPECT_EQ(d.suspect_word, 2u);
  ASSERT_TRUE(mem.repair(d.suspect_word));  // second spare is healthy

  d = diagnose_transparent(mem, r.twmarch, r.prediction);
  EXPECT_FALSE(d.fault_found);
}

}  // namespace
}  // namespace twm
