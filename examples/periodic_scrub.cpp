// Periodic online testing of an SoC memory during idle windows — the
// deployment scenario of the paper's introduction.
//
// A TBIST controller interleaves transparent test sessions with bursts of
// functional traffic.  Functional reads are serviced mid-session (the
// controller XOR-corrects the displaced words); functional writes abort the
// session, which simply reruns in the next idle window.  A soft transition
// fault strikes mid-life and is caught by the first session that completes
// afterwards.
//
//   $ ./periodic_scrub
#include <cstdio>

#include "bist/tbist.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/memory.h"
#include "util/rng.h"

int main() {
  using namespace twm;
  const std::size_t kWords = 64;
  const unsigned kWidth = 16;

  Rng rng(7);
  Memory mem(kWords, kWidth);
  mem.fill_random(rng);

  const TwmResult twm = twm_transform(march_by_name("March U"), kWidth);
  TbistController ctrl(mem, {twm.twmarch, twm.prediction, 0});
  std::printf("TWMarch(March U) B=%u: session cost = %zu ops/word + compare\n\n", kWidth,
              twm.twmarch.op_count() + twm.prediction.op_count());

  std::vector<BitVec> shadow(kWords, BitVec::zeros(kWidth));
  for (std::size_t a = 0; a < kWords; ++a) shadow[a] = ctrl.functional_read(a);

  bool fault_live = false;
  int epoch = 0;
  for (; epoch < 100; ++epoch) {
    // --- idle window: the controller advances the session -------------
    ctrl.start_session();
    bool interrupted = false;
    while (ctrl.step()) {
      // Sporadic system activity lands mid-session (rare: the session runs
      // in an idle window, but stray accesses do happen).
      if (rng.next_below(10000) < 2) {
        const std::size_t a = rng.next_below(kWords);
        if (rng.next_bool()) {
          const BitVec d = rng.next_word(kWidth);
          ctrl.functional_write(a, d);  // aborts; controller restored memory
          shadow[a] = d;
          interrupted = true;
          break;
        }
        // Mid-session read returns functional data despite displacement.
        const BitVec v = ctrl.functional_read(a);
        if (!fault_live && v != shadow[a]) {
          std::printf("epoch %3d: COHERENCE VIOLATION at word %zu\n", epoch, a);
          return 1;
        }
      }
    }
    if (interrupted) {
      std::printf("epoch %3d: session aborted by system write, will retry\n", epoch);
      continue;
    }
    if (ctrl.last_session_failed()) {
      std::printf("epoch %3d: FAULT DETECTED (signature mismatch)\n", epoch);
      break;
    }
    if (epoch % 10 == 0) std::printf("epoch %3d: session clean\n", epoch);

    // --- activity burst -----------------------------------------------
    for (int t = 0; t < 25; ++t) {
      const std::size_t a = rng.next_below(kWords);
      const BitVec d = rng.next_word(kWidth);
      ctrl.functional_write(a, d);
      shadow[a] = d;
    }

    if (epoch == 42) {
      mem.inject(Fault::tf({17, 5}, Transition::Down));
      fault_live = true;
      std::printf("epoch %3d: (transition fault silently develops at w17.b5)\n", epoch);
    }
  }

  const auto& s = ctrl.stats();
  std::printf("\nlifetime stats: %llu sessions started, %llu completed, %llu aborted, "
              "%llu failures, %llu steps, %llu functional reads, %llu functional writes\n",
              (unsigned long long)s.sessions_started, (unsigned long long)s.sessions_completed,
              (unsigned long long)s.sessions_aborted, (unsigned long long)s.failures_detected,
              (unsigned long long)s.steps, (unsigned long long)s.functional_reads,
              (unsigned long long)s.functional_writes);
  return s.failures_detected > 0 ? 0 : 1;
}
