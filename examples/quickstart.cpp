// Quickstart: transform a classical bit-oriented march into a transparent
// word-oriented march with TWM_TA, run it on a simulated embedded memory,
// and watch it (a) preserve the live contents and (b) catch an injected
// fault via MISR signature comparison.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/printer.h"
#include "memsim/memory.h"
#include "util/rng.h"

int main() {
  using namespace twm;

  // 1. Pick a bit-oriented march and a word width.
  const MarchTest bit_march = march_by_name("March C-");
  const unsigned width = 32;
  std::cout << "input:  " << to_string(bit_march) << "\n\n";

  // 2. Transform it (Algorithm 1 of the paper).
  const TwmResult twm = twm_transform(bit_march, width);
  std::cout << "TSMarch: " << to_string(twm.tsmarch) << "\n";
  std::cout << "ATMarch: " << to_string(twm.atmarch) << "\n";
  std::printf("TWMarch: %zu ops/word, prediction: %zu ops/word\n\n",
              twm.twmarch.op_count(), twm.prediction.op_count());

  // 3. A 256-word embedded memory holding live application data.
  Rng rng(2024);
  Memory mem(256, width);
  mem.fill_random(rng);
  const auto before = mem.snapshot();

  // 4. Healthy memory: prediction and test signatures agree and the
  //    contents survive untouched (that's the "transparent" in the title).
  MarchRunner runner(mem);
  auto out = runner.run_transparent_session(twm.twmarch, twm.prediction, width);
  std::printf("healthy:  detected=%s  contents preserved=%s\n",
              out.detected_misr ? "yes" : "no", mem.equals(before) ? "yes" : "no");

  // 5. A transition fault develops in the field; the next idle-time session
  //    flags it without ever needing golden data.
  mem.inject(Fault::tf({123, 17}, Transition::Up));
  out = runner.run_transparent_session(twm.twmarch, twm.prediction, width);
  std::printf("faulty:   detected=%s  (signatures %s vs %s)\n", out.detected_misr ? "yes" : "no",
              out.signature_predicted.to_string().substr(0, 8).c_str(),
              out.signature_observed.to_string().substr(0, 8).c_str());
  return out.detected_misr ? 0 : 1;
}
