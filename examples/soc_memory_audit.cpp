// SoC memory-core audit: given a set of embedded memories of different
// geometries and an idle-window cycle budget per core, pick the cheapest
// transparent scheme that fits, then validate the chosen tests by a
// fault-injection campaign on each core — expressed as a batch of
// declarative CampaignSpecs (src/api) that could equally be committed as
// JSON and replayed with `twm_cli run`.
//
//   $ ./soc_memory_audit
#include <cstdio>
#include <iostream>

#include "analysis/report.h"
#include "api/runner.h"
#include "api/sink.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/table.h"

int main() {
  using namespace twm;

  struct Core {
    std::string name;
    std::size_t words;
    unsigned width;
    std::string march;
    std::size_t idle_budget;  // memory operations available per idle window
  };
  const Core cores[] = {
      {"cpu-l1-tags", 256, 16, "March C-", 24000},
      {"dsp-scratch", 1024, 32, "March U", 80000},
      {"nic-ring", 512, 64, "March C-", 48000},
      {"video-line", 2048, 128, "MATS+", 160000},
  };

  std::cout << "== transparent-test budget audit ==\n\n";
  Table t({"core", "geometry", "march", "proposed (ops)", "scheme1 (ops)", "TOMT (ops)",
           "fits budget"});
  for (const auto& c : cores) {
    const auto& info = march_info(c.march);
    const auto p = formula_proposed(info.ops, info.reads, c.width);
    const auto s1 = formula_scheme1(info.ops, info.reads, c.width);
    const auto s2 = formula_tomt(c.width);
    const std::size_t p_ops = p.total() * c.words;
    const std::size_t s1_ops = s1.total() * c.words;
    const std::size_t s2_ops = s2.total() * c.words;
    std::string fits;
    fits += p_ops <= c.idle_budget ? "proposed " : "";
    fits += s1_ops <= c.idle_budget ? "scheme1 " : "";
    fits += s2_ops <= c.idle_budget ? "tomt" : "";
    if (fits.empty()) fits = "none";
    t.add_row({c.name, std::to_string(c.words) + "x" + std::to_string(c.width), c.march,
               std::to_string(p_ops), std::to_string(s1_ops), std::to_string(s2_ops), fits});
  }
  t.print(std::cout);

  // Validate the proposed tests on scaled-down twins of two cores.  Each
  // twin's campaign is a declarative CampaignSpec — the batch below could
  // be dumped with api::to_json, committed, queued, and replayed verbatim
  // with `twm_cli run` — executed here through the public streaming runner.
  std::cout << "\n== fault-injection validation (scaled-down twins, declarative specs) ==\n\n";
  std::vector<api::CampaignSpec> batch;
  for (const auto& c : {cores[0], cores[1]}) {
    api::CampaignSpec spec;
    spec.name = "audit-" + c.name;
    spec.words = 6;
    spec.width = c.width;
    spec.march = c.march;
    spec.schemes = {SchemeKind::ProposedExact};
    spec.classes = *api::parse_classes("saf,tf,cfid:inter");
    spec.seeds = {0, 3};
    spec.backend = CoverageBackend::Packed;
    spec.threads = 2;
    batch.push_back(spec);
  }
  std::cout << "batch spec (replay with `twm_cli run audit.json`):\n"
            << api::to_json(batch) << "\n\n";

  Table v({"core twin", "fault class", "coverage (all contents)"});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const api::CampaignSummary summary = api::run_campaign(batch[i]);
    bool first = true;
    for (const api::CellResult& cell : summary.cells) {
      v.add_row({first ? cores[i].name : "", api::class_label(cell.cls),
                 coverage_str(cell.outcome)});
      first = false;
    }
    v.add_rule();
  }
  v.print(std::cout);
  return 0;
}
