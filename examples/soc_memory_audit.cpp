// SoC memory-core audit: given a set of embedded memories of different
// geometries and an idle-window cycle budget per core, pick the cheapest
// transparent scheme that fits, then validate the chosen tests by a
// sampled fault-injection campaign on each core.
//
//   $ ./soc_memory_audit
#include <cstdio>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "analysis/report.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/table.h"

int main() {
  using namespace twm;

  struct Core {
    std::string name;
    std::size_t words;
    unsigned width;
    std::string march;
    std::size_t idle_budget;  // memory operations available per idle window
  };
  const Core cores[] = {
      {"cpu-l1-tags", 256, 16, "March C-", 24000},
      {"dsp-scratch", 1024, 32, "March U", 80000},
      {"nic-ring", 512, 64, "March C-", 48000},
      {"video-line", 2048, 128, "MATS+", 160000},
  };

  std::cout << "== transparent-test budget audit ==\n\n";
  Table t({"core", "geometry", "march", "proposed (ops)", "scheme1 (ops)", "TOMT (ops)",
           "fits budget"});
  for (const auto& c : cores) {
    const auto& info = march_info(c.march);
    const auto p = formula_proposed(info.ops, info.reads, c.width);
    const auto s1 = formula_scheme1(info.ops, info.reads, c.width);
    const auto s2 = formula_tomt(c.width);
    const std::size_t p_ops = p.total() * c.words;
    const std::size_t s1_ops = s1.total() * c.words;
    const std::size_t s2_ops = s2.total() * c.words;
    std::string fits;
    fits += p_ops <= c.idle_budget ? "proposed " : "";
    fits += s1_ops <= c.idle_budget ? "scheme1 " : "";
    fits += s2_ops <= c.idle_budget ? "tomt" : "";
    if (fits.empty()) fits = "none";
    t.add_row({c.name, std::to_string(c.words) + "x" + std::to_string(c.width), c.march,
               std::to_string(p_ops), std::to_string(s1_ops), std::to_string(s2_ops), fits});
  }
  t.print(std::cout);

  // Validate the proposed tests on scaled-down twins of two cores with a
  // sampled fault campaign (exhaustive SAF/TF, sampled coupling faults).
  std::cout << "\n== sampled fault-injection validation (scaled-down twins) ==\n\n";
  Table v({"core twin", "fault class", "coverage (all contents)"});
  for (const auto& c : {cores[0], cores[1]}) {
    const std::size_t words = 6;
    const CampaignRunner runner(words, c.width, {CoverageBackend::Packed, 2});
    const MarchTest march = march_by_name(c.march);
    Rng rng(5);

    const auto safs = all_safs(words, c.width);
    const auto tfs = all_tfs(words, c.width);
    const auto cfs = sampled_cfs(words, c.width, FaultClass::CFid, CfScope::Both, 80, rng);

    v.add_row({c.name, "SAF",
               coverage_str(runner.evaluate(SchemeKind::ProposedExact, march, safs, {0, 3}))});
    v.add_row({"", "TF",
               coverage_str(runner.evaluate(SchemeKind::ProposedExact, march, tfs, {0, 3}))});
    v.add_row({"", "CFid (sampled)",
               coverage_str(runner.evaluate(SchemeKind::ProposedExact, march, cfs, {0, 3}))});
    v.add_rule();
  }
  v.print(std::cout);
  return 0;
}
