#!/usr/bin/env bash
# Demonstrates (and, in CI, gates) the campaign daemon's result cache:
#
#   1. boot `twm_cli serve` on an ephemeral port with a disk cache,
#   2. submit examples/specs/service_demo.json — every cell simulates live,
#   3. submit it AGAIN — the campaign_stats frame must report simulated:0
#      and the replayed unit records must be byte-identical to the first
#      run's,
#   4. extend the spec by one fault class and submit — only the new cells
#      may simulate,
#   5. shut the daemon down over the protocol.
#
# Usage: examples/specs/submit_demo.sh [path/to/twm_cli]
# Needs jq (for the delta-spec edit and the stats assertions).
set -euo pipefail

CLI=${1:-./build/twm_cli}
SPEC_DIR=$(cd "$(dirname "$0")" && pwd)
SPEC="$SPEC_DIR/service_demo.json"
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CLI" serve --port 0 --cache-dir "$WORK/cache" > "$WORK/serve.jsonl" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORK/serve.jsonl" ] && break
  sleep 0.1
done
PORT=$(jq -r 'select(.type=="serving") | .port' "$WORK/serve.jsonl")
[ -n "$PORT" ] || { echo "daemon never reported its port" >&2; exit 1; }
echo "daemon on 127.0.0.1:$PORT (cache: $WORK/cache)"

"$CLI" submit "$SPEC" --port "$PORT" > "$WORK/first.jsonl"
"$CLI" submit "$SPEC" --port "$PORT" > "$WORK/second.jsonl"

echo "first:  $(grep '"type":"campaign_stats"' "$WORK/first.jsonl")"
echo "second: $(grep '"type":"campaign_stats"' "$WORK/second.jsonl")"

# The second submission re-simulated NOTHING: every cell replayed.
jq -e 'select(.type=="campaign_stats")
       | .simulated == 0 and .cached == .cells and .faults_replayed > 0' \
  "$WORK/second.jsonl" > /dev/null \
  || { echo "FAIL: resubmission did not replay from the cache" >&2; exit 1; }

# ...and byte-identically: the replayed unit records are the original ones.
diff <(grep '"type":"unit"' "$WORK/first.jsonl") \
     <(grep '"type":"unit"' "$WORK/second.jsonl") \
  || { echo "FAIL: replayed unit records differ from the original run" >&2; exit 1; }
echo "OK: resubmission replayed $(grep -c '"type":"unit"' "$WORK/second.jsonl") unit records byte-identically"

# A spec extended by one fault class simulates ONLY the new cells.
jq '.classes += ["ret"] | .name += "-delta"' "$SPEC" > "$WORK/delta.json"
"$CLI" submit "$WORK/delta.json" --port "$PORT" > "$WORK/delta.jsonl"
echo "delta:  $(grep '"type":"campaign_stats"' "$WORK/delta.jsonl")"
jq -e 'select(.type=="campaign_stats")
       | .simulated == 1 and .cached == (.cells - 1)' \
  "$WORK/delta.jsonl" > /dev/null \
  || { echo "FAIL: delta spec did not simulate exactly its new cell" >&2; exit 1; }
echo "OK: delta spec simulated only the added fault class"

"$CLI" submit --port "$PORT" --shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "daemon shut down cleanly"

# Checkpoint/resume smoke: a region-sharded run persists per-region
# progress after every region settles.  Dropping half the regions from the
# file simulates an interrupted run; the resumed run must replay the kept
# regions, simulate only the dropped ones, and produce the same record set.
"$CLI" run "$SPEC_DIR/quickstart.json" --regions 4 --sink csv \
  --out "$WORK/full.csv" --checkpoint "$WORK/ck.json"
DONE=$(jq '.cells | length' "$WORK/ck.json")
echo "checkpoint holds $DONE settled (cell, region) entries"
[ "$DONE" -eq 16 ] || { echo "FAIL: expected 16 entries (4 cells x 4 regions)" >&2; exit 1; }

jq '.cells |= map(select(.region < 2))' "$WORK/ck.json" > "$WORK/ck_partial.json"
"$CLI" run "$SPEC_DIR/quickstart.json" --regions 4 --sink csv \
  --out "$WORK/resumed.csv" --checkpoint "$WORK/ck_partial.json"

# Same unit records (order differs: replayed regions stream first).
diff <(sort "$WORK/full.csv") <(sort "$WORK/resumed.csv") \
  || { echo "FAIL: resumed run's records differ from the uninterrupted run" >&2; exit 1; }
# The resumed run re-settles the dropped regions: the file is whole again.
[ "$(jq '.cells | length' "$WORK/ck_partial.json")" -eq 16 ] \
  || { echo "FAIL: resume did not re-complete the dropped regions" >&2; exit 1; }
echo "OK: checkpoint resume replayed 2 regions, re-simulated 2, records identical"
