// Field repair: the detect -> diagnose -> remap -> retest loop (BIST+BISR)
// built from the transparent scheme plus word-level redundancy.
//
// A comparator-observed transparent session localizes the failing word from
// the position of the first deviating read — no golden data needed — and a
// spare word takes it out of service, all without disturbing the live
// contents of the healthy words.
//
//   $ ./field_repair
#include <cstdio>

#include "analysis/diagnosis.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/repair.h"
#include "util/rng.h"

int main() {
  using namespace twm;
  const std::size_t kWords = 32;
  const std::size_t kSpares = 2;
  const unsigned kWidth = 16;

  RepairableMemory mem(kWords, kSpares, kWidth);
  Rng rng(2025);
  for (std::size_t a = 0; a < kWords; ++a) mem.write(a, rng.next_word(kWidth));

  const TwmResult twm = twm_transform(march_by_name("March C-"), kWidth);
  std::printf("memory: %zu words x %u bits, %zu spare words\n", kWords, kWidth, kSpares);
  std::printf("test:   TWMarch(March C-), %zu ops/word\n\n", twm.twmarch.op_count());

  // Life is good.
  Diagnosis d = diagnose_transparent(mem, twm.twmarch, twm.prediction);
  std::printf("initial scrub: %s\n", d.fault_found ? "FAULT" : "clean");

  // Wear-out: a cell in physical word 19 gets stuck, and (unluckily) the
  // first spare has a defect from manufacturing that escaped test.
  mem.physical().inject(Fault::saf({19, 7}, true));
  mem.physical().inject(Fault::tf({kWords, 3}, Transition::Up));  // spare 0
  std::printf("\n(wear-out: SAF in word 19; latent TF in spare 0)\n\n");

  for (int attempt = 1; attempt <= 4; ++attempt) {
    d = diagnose_transparent(mem, twm.twmarch, twm.prediction);
    if (!d.fault_found) {
      std::printf("scrub %d: clean — repair complete, %zu spare(s) left\n", attempt,
                  mem.spares_left());
      return 0;
    }
    std::printf("scrub %d: fault at word %zu (syndrome %s, element %zu, %zu deviating reads)\n",
                attempt, d.suspect_word, d.bit_syndrome.to_string().c_str(),
                d.location.element, d.mismatch_count);
    if (!mem.repair(d.suspect_word)) {
      std::printf("         out of spares — memory must be retired\n");
      return 1;
    }
    std::printf("         remapped word %zu onto a spare (%zu left)\n", d.suspect_word,
                mem.spares_left());
  }
  std::printf("repair did not converge\n");
  return 1;
}
